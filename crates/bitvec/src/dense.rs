//! Dense bit vector on `u64` words.
//!
//! This is the workhorse of the whole repository: every BFU, every bit-sliced
//! row in COBS, every SBT node, and every per-repetition document bitmap in
//! Algorithm 2 is one of these. Union and intersection — the two operations
//! the RAMBO query loop performs per repetition — are whole-word `|=` / `&=`
//! passes, which is exactly the "fast bitwise operations" implementation the
//! paper describes in §3.3 and §5.1. The word loops run through the
//! runtime-dispatched kernels in [`crate::kernel`] (portable scalar
//! everywhere, AVX2 where detected), and the words themselves
//! live in a [`WordStore`] — heap-owned, or a zero-copy view into a shared
//! byte buffer ([`BitVec::open_view`]).

use crate::error::DecodeError;
use crate::kernel;
use crate::store::{skip_word_padding, write_word_padding, WordStore, WordView};
use bytes::{Buf, BufMut};
use std::sync::Arc;

const WORD_BITS: usize = 64;
/// Format magic. `RBV2` revs `RBV1` by 8-byte-aligning the word payload
/// (one pad byte + up to 7 zero bytes after the header) so serialized
/// vectors can be mapped in place.
const MAGIC: &[u8; 4] = b"RBV2";
/// Bytes before the alignment padding: magic, bit length, pad length.
const HEADER_BYTES: usize = 4 + 8 + 1;

/// A fixed-length dense bit vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    len: usize,
    words: WordStore,
}

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl BitVec {
    /// An all-zero vector of `len` bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; word_count(len)].into(),
        }
    }

    /// An all-one vector of `len` bits (trailing bits in the last word are
    /// kept zero so `count_ones` stays exact).
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut v = Self {
            len,
            words: vec![u64::MAX; word_count(len)].into(),
        };
        v.mask_tail();
        v
    }

    /// Build from an iterator of set-bit positions.
    ///
    /// # Panics
    /// Panics if any position is `>= len`.
    #[must_use]
    pub fn from_ones(len: usize, ones: impl IntoIterator<Item = usize>) -> Self {
        let mut v = Self::zeros(len);
        for i in ones {
            v.set(i);
        }
        v
    }

    /// Zero any bits beyond `len` in the final word.
    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.to_mut().last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of addressable bits.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when `len() == 0`.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when the words are a zero-copy view into a shared buffer (see
    /// [`BitVec::open_view`]).
    #[inline]
    #[must_use]
    pub fn is_view(&self) -> bool {
        self.words.is_view()
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words.as_words()[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Set bit `i` to one.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words.to_mut()[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clear bit `i` to zero.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words.to_mut()[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Write `value` into bit `i`.
    #[inline]
    pub fn assign(&mut self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Zero every bit, keeping the allocation (the query scratch buffers in
    /// RAMBO reuse one vector per repetition).
    pub fn clear_all(&mut self) {
        self.words.to_mut().fill(0);
    }

    /// Set every bit.
    pub fn set_all(&mut self) {
        self.words.to_mut().fill(u64::MAX);
        self.mask_tail();
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        kernel::popcount(self.words.as_words())
    }

    /// Fraction of set bits (`count_ones / len`); 0 for empty vectors.
    ///
    /// For a Bloom filter this is the *fill ratio* that drives the
    /// false-positive estimate `(fill)^η`.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// True if at least one bit is set.
    #[must_use]
    pub fn any(&self) -> bool {
        kernel::any(self.words.as_words())
    }

    /// True if no bit is set.
    #[must_use]
    pub fn none(&self) -> bool {
        !self.any()
    }

    /// In-place union (`self |= other`).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn or_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "or_assign length mismatch");
        kernel::or_into(self.words.to_mut(), other.words.as_words());
    }

    /// In-place intersection (`self &= other`).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "and_assign length mismatch");
        kernel::and_rows_into_any(self.words.to_mut(), [other.words.as_words()]);
    }

    /// Fused in-place intersection + liveness: `self &= other`, returning
    /// `true` if any bit survives. One pass instead of `and_assign` followed
    /// by `any` — this is the repetition-intersection walk of Algorithm 2.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and_assign_any(&mut self, other: &Self) -> bool {
        assert_eq!(self.len, other.len, "and_assign_any length mismatch");
        kernel::and_rows_into_any(self.words.to_mut(), [other.words.as_words()])
    }

    /// In-place symmetric difference (`self ^= other`).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "xor_assign length mismatch");
        for (a, b) in self.words.to_mut().iter_mut().zip(other.words.as_words()) {
            *a ^= b;
        }
    }

    /// In-place difference (`self &= !other`): clears every bit set in
    /// `other`. Used by the split-filter SBT baselines ("rem = union − sim").
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and_not_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "and_not_assign length mismatch");
        for (a, b) in self.words.to_mut().iter_mut().zip(other.words.as_words()) {
            *a &= !b;
        }
    }

    /// In-place intersection with a raw word slice (`self &= words`), used
    /// by row-major bit matrices whose rows alias this vector's geometry.
    ///
    /// # Panics
    /// Panics if `words` is shorter than this vector's word count.
    pub fn and_words(&mut self, words: &[u64]) {
        self.and_words_any(words);
    }

    /// [`BitVec::and_words`] returning `true` if any bit survives (fused
    /// AND + liveness, one pass).
    ///
    /// # Panics
    /// Panics if `words` is shorter than this vector's word count.
    pub fn and_words_any(&mut self, words: &[u64]) -> bool {
        kernel::and_rows_into_any(self.words.to_mut(), [words])
    }

    /// Fused multi-row intersection: `self &= rows[0] & … & rows[N-1]` in a
    /// single pass over the vector, returning `true` if any bit survives.
    /// This is the per-table probe kernel of Algorithm 2: several Bloom rows
    /// are ANDed per pass so the running mask stays in registers.
    ///
    /// # Panics
    /// Panics if any row is shorter than this vector's word count.
    pub fn and_rows_any<const N: usize>(&mut self, rows: [&[u64]; N]) -> bool {
        kernel::and_rows_into_any(self.words.to_mut(), rows)
    }

    /// Overwrite `self` with `other`, reusing the existing allocation.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "copy_from length mismatch");
        self.words.to_mut().copy_from_slice(other.words.as_words());
    }

    /// `popcount(self & other)` without materializing the intersection.
    /// This is the similarity kernel used by SBT greedy insertion.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn count_and(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "count_and length mismatch");
        self.words
            .as_words()
            .iter()
            .zip(other.words.as_words())
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `popcount(self | other)` without materializing the union.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn count_or(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "count_or length mismatch");
        self.words
            .as_words()
            .iter()
            .zip(other.words.as_words())
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// True if every set bit of `self` is also set in `other`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        assert_eq!(self.len, other.len, "is_subset_of length mismatch");
        self.words
            .as_words()
            .iter()
            .zip(other.words.as_words())
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> Ones<'_> {
        let words = self.words.as_words();
        Ones {
            words,
            word_idx: 0,
            current: words.first().copied().unwrap_or(0),
        }
    }

    /// The underlying words (little-endian bit order within each word).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        self.words.as_words()
    }

    /// Heap bytes consumed by the raw bits (excludes the struct header; a
    /// view's borrowed payload counts toward its backing buffer, not here).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Append the binary encoding (`RBV2` magic, bit length, alignment
    /// padding, words). The pad is chosen so the word payload lands on an
    /// 8-byte boundary *relative to the start of `out`* — containers that
    /// keep that origin (files, [`BitVec::to_bytes`]) can later be opened
    /// zero-copy via [`BitVec::open_view`].
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_slice(MAGIC);
        out.put_u64_le(self.len as u64);
        write_word_padding(out);
        for &w in self.words.as_words() {
            out.put_u64_le(w);
        }
    }

    /// Serialize to a standalone byte buffer.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_BYTES + 7 + self.words.len() * 8);
        self.encode_into(&mut out);
        out
    }

    /// Parse the fixed header, returning `(len, n_words, payload_len)` with
    /// `buf` advanced past the header and padding.
    fn decode_header(buf: &mut &[u8]) -> Result<(usize, usize, usize), DecodeError> {
        if buf.remaining() < HEADER_BYTES - 1 {
            return Err(DecodeError::new("bitvec header truncated"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::new("bad bitvec magic"));
        }
        let len = usize::try_from(buf.get_u64_le())
            .map_err(|_| DecodeError::new("bitvec length exceeds address space"))?;
        skip_word_padding(buf)?;
        let n_words = word_count(len);
        let payload_len = n_words
            .checked_mul(8)
            .ok_or_else(|| DecodeError::new("bitvec size overflow"))?;
        if buf.remaining() < payload_len {
            return Err(DecodeError::new("bitvec payload truncated"));
        }
        Ok((len, n_words, payload_len))
    }

    /// Reject encodings whose last word sets bits beyond `len`.
    fn check_tail(words: &[u64], len: usize) -> Result<(), DecodeError> {
        let tail = len % WORD_BITS;
        if tail != 0 {
            if let Some(&last) = words.last() {
                if last & !((1u64 << tail) - 1) != 0 {
                    return Err(DecodeError::new("bitvec tail bits beyond len are set"));
                }
            }
        }
        Ok(())
    }

    /// Decode from a buffer previously filled by [`BitVec::encode_into`],
    /// advancing `buf` past the consumed bytes. Copies the payload into
    /// owned storage.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on bad magic, truncation, or dirty tail bits.
    pub fn decode_from(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let (len, n_words, payload_len) = Self::decode_header(buf)?;
        // Bulk chunked decode (mirrors the BFU matrix decode).
        let mut words = Vec::with_capacity(n_words);
        words.extend(
            buf[..payload_len]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8"))),
        );
        buf.advance(payload_len);
        Self::check_tail(&words, len)?;
        Ok(Self {
            len,
            words: words.into(),
        })
    }

    /// Decode from an exact buffer (must consume all bytes).
    ///
    /// # Errors
    /// Returns [`DecodeError`] on any format violation or trailing garbage.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        let v = Self::decode_from(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(DecodeError::new("trailing bytes after bitvec"));
        }
        Ok(v)
    }

    /// Zero-copy load: parse the header and borrow the word payload straight
    /// out of `buf` (an mmap'd file, a loaded `Vec<u8>` behind an `Arc`).
    /// No word is copied; mutating the result promotes it to owned storage
    /// first (see [`crate::WordStore`]). The whole buffer must be consumed.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on any format violation, on trailing bytes,
    /// or when the payload is not 8-byte-aligned in memory.
    pub fn open_view(buf: Arc<[u8]>) -> Result<Self, DecodeError> {
        let mut slice: &[u8] = &buf;
        let total = slice.len();
        let (len, n_words, payload_len) = Self::decode_header(&mut slice)?;
        let start = total - slice.len();
        if start + payload_len != total {
            return Err(DecodeError::new("trailing bytes after bitvec"));
        }
        let view = WordView::new(buf, start, n_words)?;
        Self::check_tail(view.as_words(), len)?;
        Ok(Self {
            len,
            words: WordStore::View(view),
        })
    }
}

/// Iterator over set-bit indices; see [`BitVec::iter_ones`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_counts() {
        let z = BitVec::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        assert!(z.none());
        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert!(o.any());
        assert!((o.fill_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec::zeros(200);
        for i in (0..200).step_by(7) {
            v.set(i);
        }
        for i in 0..200 {
            assert_eq!(v.get(i), i % 7 == 0, "bit {i}");
        }
        v.clear(0);
        assert!(!v.get(0));
        v.assign(0, true);
        assert!(v.get(0));
        v.assign(0, false);
        assert!(!v.get(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(64);
        let _ = v.get(64);
    }

    #[test]
    fn boolean_ops_match_naive() {
        let a = BitVec::from_ones(100, (0..100).filter(|i| i % 3 == 0));
        let b = BitVec::from_ones(100, (0..100).filter(|i| i % 5 == 0));

        let mut or = a.clone();
        or.or_assign(&b);
        let mut and = a.clone();
        and.and_assign(&b);
        let mut xor = a.clone();
        xor.xor_assign(&b);
        let mut diff = a.clone();
        diff.and_not_assign(&b);

        for i in 0..100 {
            let (x, y) = (i % 3 == 0, i % 5 == 0);
            assert_eq!(or.get(i), x || y);
            assert_eq!(and.get(i), x && y);
            assert_eq!(xor.get(i), x ^ y);
            assert_eq!(diff.get(i), x && !y);
        }
        assert_eq!(a.count_and(&b), and.count_ones());
        assert_eq!(a.count_or(&b), or.count_ones());
    }

    #[test]
    fn fused_and_assign_any_reports_liveness() {
        let a = BitVec::from_ones(100, [3, 30, 90]);
        let b = BitVec::from_ones(100, [30, 91]);
        let mut x = a.clone();
        assert!(x.and_assign_any(&b));
        assert_eq!(x.iter_ones().collect::<Vec<_>>(), vec![30]);
        let disjoint = BitVec::from_ones(100, [1, 2]);
        assert!(!x.and_assign_any(&disjoint));
        assert!(x.none());
    }

    #[test]
    fn fused_and_rows_matches_sequential() {
        let base = BitVec::ones(300);
        let r0 = BitVec::from_ones(300, (0..300).filter(|i| i % 2 == 0));
        let r1 = BitVec::from_ones(300, (0..300).filter(|i| i % 3 == 0));
        let r2 = BitVec::from_ones(300, (0..300).filter(|i| i % 5 == 0));
        let r3 = BitVec::from_ones(300, (0..300).filter(|i| i % 7 == 0));

        let mut seq = base.clone();
        for r in [&r0, &r1, &r2, &r3] {
            seq.and_words(r.words());
        }
        let mut fused = base.clone();
        let live = fused.and_rows_any([r0.words(), r1.words(), r2.words(), r3.words()]);
        assert_eq!(fused, seq);
        assert_eq!(live, seq.any());
    }

    #[test]
    fn subset_relation() {
        let small = BitVec::from_ones(64, [1, 5, 9]);
        let big = BitVec::from_ones(64, [1, 3, 5, 9, 11]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_subset_of(&small));
    }

    #[test]
    fn ones_iterator_yields_sorted_positions() {
        let positions = vec![0, 1, 63, 64, 65, 127, 128, 199];
        let v = BitVec::from_ones(200, positions.clone());
        let got: Vec<usize> = v.iter_ones().collect();
        assert_eq!(got, positions);
    }

    #[test]
    fn ones_iterator_empty_and_full() {
        assert_eq!(BitVec::zeros(70).iter_ones().count(), 0);
        let full: Vec<usize> = BitVec::ones(70).iter_ones().collect();
        assert_eq!(full, (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn tail_masking_keeps_counts_exact() {
        let mut v = BitVec::ones(65);
        assert_eq!(v.count_ones(), 65);
        v.set_all();
        assert_eq!(v.count_ones(), 65);
    }

    #[test]
    fn clear_all_keeps_len() {
        let mut v = BitVec::ones(100);
        v.clear_all();
        assert_eq!(v.len(), 100);
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn serialization_roundtrip() {
        let v = BitVec::from_ones(1000, (0..1000).filter(|i| i % 13 == 0));
        let bytes = v.to_bytes();
        let back = BitVec::from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn serialized_payload_is_aligned() {
        let v = BitVec::from_ones(100, [5, 50]);
        let bytes = v.to_bytes();
        // magic (4) + len (8) + pad byte (1) + pad → word payload at a
        // multiple of 8 from the buffer start.
        let pad = bytes[12] as usize;
        assert_eq!((HEADER_BYTES + pad) % 8, 0);
    }

    #[test]
    fn serialization_rejects_corruption() {
        let v = BitVec::from_ones(100, [5, 50]);
        let mut bytes = v.to_bytes();
        bytes[0] = b'X';
        assert!(BitVec::from_bytes(&bytes).is_err());

        let bytes = v.to_bytes();
        assert!(BitVec::from_bytes(&bytes[..bytes.len() - 1]).is_err());

        let mut bytes = v.to_bytes();
        bytes.push(0);
        assert!(BitVec::from_bytes(&bytes).is_err());

        // Non-zero padding byte.
        let mut bytes = v.to_bytes();
        if bytes[12] > 0 {
            bytes[13] = 1;
            assert!(BitVec::from_bytes(&bytes).is_err());
        }
    }

    #[test]
    fn serialization_rejects_dirty_tail() {
        let v = BitVec::zeros(10);
        let mut bytes = v.to_bytes();
        // Set a bit beyond len=10 inside the stored word.
        let last = bytes.len() - 1;
        bytes[last] = 0x80;
        assert!(BitVec::from_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_vector_roundtrip() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        let back = BitVec::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(v, back);
        assert_eq!(v.fill_ratio(), 0.0);
    }

    #[test]
    fn open_view_borrows_and_matches_decode() {
        let v = BitVec::from_ones(500, (0..500).filter(|i| i % 11 == 0));
        let buf: Arc<[u8]> = v.to_bytes().into();
        if !(buf.as_ptr() as usize).is_multiple_of(8) {
            return; // 32-bit Arc layouts may misalign the payload; the
                    // loader correctly errors there (see store.rs tests)
        }
        let view = BitVec::open_view(buf.clone()).unwrap();
        assert!(view.is_view());
        assert_eq!(view, v);
        assert_eq!(view.count_ones(), v.count_ones());
        // The words really live inside `buf`.
        let range = buf.as_ptr_range();
        let p = view.words().as_ptr().cast::<u8>();
        assert!(range.contains(&p));
    }

    #[test]
    fn open_view_promotes_on_write() {
        let v = BitVec::from_ones(100, [1, 99]);
        let buf: Arc<[u8]> = v.to_bytes().into();
        if !(buf.as_ptr() as usize).is_multiple_of(8) {
            return; // 32-bit Arc layouts may misalign the payload; the
                    // loader correctly errors there (see store.rs tests)
        }
        let mut view = BitVec::open_view(buf).unwrap();
        view.set(50);
        assert!(!view.is_view(), "mutation must promote to owned");
        assert!(view.get(50) && view.get(1) && view.get(99));
    }

    #[test]
    fn open_view_rejects_trailing_and_truncation() {
        let v = BitVec::from_ones(100, [7]);
        let mut bytes = v.to_bytes();
        bytes.push(0);
        assert!(BitVec::open_view(bytes.clone().into()).is_err());
        bytes.truncate(bytes.len() - 3);
        assert!(BitVec::open_view(bytes.into()).is_err());
    }

    #[test]
    fn copy_from_reuses_allocation() {
        let a = BitVec::from_ones(128, [0, 64, 127]);
        let mut b = BitVec::zeros(128);
        b.copy_from(&a);
        assert_eq!(a, b);
    }
}
