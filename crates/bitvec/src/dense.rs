//! Dense bit vector on `u64` words.
//!
//! This is the workhorse of the whole repository: every BFU, every bit-sliced
//! row in COBS, every SBT node, and every per-repetition document bitmap in
//! Algorithm 2 is one of these. Union and intersection — the two operations
//! the RAMBO query loop performs per repetition — are whole-word `|=` / `&=`
//! passes, which is exactly the "fast bitwise operations" implementation the
//! paper describes in §3.3 and §5.1.

use crate::error::DecodeError;
use bytes::{Buf, BufMut};

const WORD_BITS: usize = 64;
const MAGIC: &[u8; 4] = b"RBV1";

/// A fixed-length dense bit vector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitVec {
    len: usize,
    words: Vec<u64>,
}

#[inline]
fn word_count(len: usize) -> usize {
    len.div_ceil(WORD_BITS)
}

impl BitVec {
    /// An all-zero vector of `len` bits.
    #[must_use]
    pub fn zeros(len: usize) -> Self {
        Self {
            len,
            words: vec![0; word_count(len)],
        }
    }

    /// An all-one vector of `len` bits (trailing bits in the last word are
    /// kept zero so `count_ones` stays exact).
    #[must_use]
    pub fn ones(len: usize) -> Self {
        let mut v = Self {
            len,
            words: vec![u64::MAX; word_count(len)],
        };
        v.mask_tail();
        v
    }

    /// Build from an iterator of set-bit positions.
    ///
    /// # Panics
    /// Panics if any position is `>= len`.
    #[must_use]
    pub fn from_ones(len: usize, ones: impl IntoIterator<Item = usize>) -> Self {
        let mut v = Self::zeros(len);
        for i in ones {
            v.set(i);
        }
        v
    }

    /// Zero any bits beyond `len` in the final word.
    fn mask_tail(&mut self) {
        let tail = self.len % WORD_BITS;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Number of addressable bits.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when `len() == 0`.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / WORD_BITS] >> (i % WORD_BITS)) & 1 == 1
    }

    /// Set bit `i` to one.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn set(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] |= 1u64 << (i % WORD_BITS);
    }

    /// Clear bit `i` to zero.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[inline]
    pub fn clear(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / WORD_BITS] &= !(1u64 << (i % WORD_BITS));
    }

    /// Write `value` into bit `i`.
    #[inline]
    pub fn assign(&mut self, i: usize, value: bool) {
        if value {
            self.set(i);
        } else {
            self.clear(i);
        }
    }

    /// Zero every bit, keeping the allocation (the query scratch buffers in
    /// RAMBO reuse one vector per repetition).
    pub fn clear_all(&mut self) {
        self.words.fill(0);
    }

    /// Set every bit.
    pub fn set_all(&mut self) {
        self.words.fill(u64::MAX);
        self.mask_tail();
    }

    /// Number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Fraction of set bits (`count_ones / len`); 0 for empty vectors.
    ///
    /// For a Bloom filter this is the *fill ratio* that drives the
    /// false-positive estimate `(fill)^η`.
    #[must_use]
    pub fn fill_ratio(&self) -> f64 {
        if self.len == 0 {
            0.0
        } else {
            self.count_ones() as f64 / self.len as f64
        }
    }

    /// True if at least one bit is set.
    #[must_use]
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// True if no bit is set.
    #[must_use]
    pub fn none(&self) -> bool {
        !self.any()
    }

    /// In-place union (`self |= other`).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn or_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "or_assign length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection (`self &= other`).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "and_assign length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place symmetric difference (`self ^= other`).
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn xor_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "xor_assign length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// In-place difference (`self &= !other`): clears every bit set in
    /// `other`. Used by the split-filter SBT baselines ("rem = union − sim").
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn and_not_assign(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "and_not_assign length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place intersection with a raw word slice (`self &= words`), used
    /// by row-major bit matrices whose rows alias this vector's geometry.
    ///
    /// # Panics
    /// Panics if `words` is shorter than this vector's word count.
    pub fn and_words(&mut self, words: &[u64]) {
        assert!(
            words.len() >= self.words.len(),
            "and_words slice shorter than vector"
        );
        for (a, b) in self.words.iter_mut().zip(words) {
            *a &= b;
        }
    }

    /// Overwrite `self` with `other`, reusing the existing allocation.
    ///
    /// # Panics
    /// Panics on length mismatch.
    pub fn copy_from(&mut self, other: &Self) {
        assert_eq!(self.len, other.len, "copy_from length mismatch");
        self.words.copy_from_slice(&other.words);
    }

    /// `popcount(self & other)` without materializing the intersection.
    /// This is the similarity kernel used by SBT greedy insertion.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn count_and(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "count_and length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `popcount(self | other)` without materializing the union.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn count_or(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "count_or length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// True if every set bit of `self` is also set in `other`.
    ///
    /// # Panics
    /// Panics on length mismatch.
    #[must_use]
    pub fn is_subset_of(&self, other: &Self) -> bool {
        assert_eq!(self.len, other.len, "is_subset_of length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterate the indices of set bits in increasing order.
    pub fn iter_ones(&self) -> Ones<'_> {
        Ones {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The underlying words (little-endian bit order within each word).
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes consumed by the raw bits (excludes the struct header).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Append the binary encoding (`RBV1` magic, bit length, words).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_slice(MAGIC);
        out.put_u64_le(self.len as u64);
        for &w in &self.words {
            out.put_u64_le(w);
        }
    }

    /// Serialize to a standalone byte buffer.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.words.len() * 8);
        self.encode_into(&mut out);
        out
    }

    /// Decode from a buffer previously filled by [`BitVec::encode_into`],
    /// advancing `buf` past the consumed bytes.
    ///
    /// # Errors
    /// Returns [`DecodeError`] on bad magic, truncation, or dirty tail bits.
    pub fn decode_from(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        if buf.remaining() < 12 {
            return Err(DecodeError::new("bitvec header truncated"));
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::new("bad bitvec magic"));
        }
        let len = usize::try_from(buf.get_u64_le())
            .map_err(|_| DecodeError::new("bitvec length exceeds address space"))?;
        let n_words = word_count(len);
        let payload_len = n_words
            .checked_mul(8)
            .ok_or_else(|| DecodeError::new("bitvec size overflow"))?;
        if buf.remaining() < payload_len {
            return Err(DecodeError::new("bitvec payload truncated"));
        }
        // Bulk chunked decode (mirrors BfuMatrix::decode_from).
        let mut words = Vec::with_capacity(n_words);
        words.extend(
            buf[..payload_len]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8"))),
        );
        buf.advance(payload_len);
        let v = Self { len, words };
        let mut check = v.clone();
        check.mask_tail();
        if check != v {
            return Err(DecodeError::new("bitvec tail bits beyond len are set"));
        }
        Ok(v)
    }

    /// Decode from an exact buffer (must consume all bytes).
    ///
    /// # Errors
    /// Returns [`DecodeError`] on any format violation or trailing garbage.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<Self, DecodeError> {
        let v = Self::decode_from(&mut bytes)?;
        if !bytes.is_empty() {
            return Err(DecodeError::new("trailing bytes after bitvec"));
        }
        Ok(v)
    }
}

/// Iterator over set-bit indices; see [`BitVec::iter_ones`].
pub struct Ones<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for Ones<'_> {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1; // clear lowest set bit
        Some(self.word_idx * WORD_BITS + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones_counts() {
        let z = BitVec::zeros(130);
        assert_eq!(z.len(), 130);
        assert_eq!(z.count_ones(), 0);
        assert!(z.none());
        let o = BitVec::ones(130);
        assert_eq!(o.count_ones(), 130);
        assert!(o.any());
        assert!((o.fill_ratio() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn set_get_clear_roundtrip() {
        let mut v = BitVec::zeros(200);
        for i in (0..200).step_by(7) {
            v.set(i);
        }
        for i in 0..200 {
            assert_eq!(v.get(i), i % 7 == 0, "bit {i}");
        }
        v.clear(0);
        assert!(!v.get(0));
        v.assign(0, true);
        assert!(v.get(0));
        v.assign(0, false);
        assert!(!v.get(0));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        let v = BitVec::zeros(64);
        let _ = v.get(64);
    }

    #[test]
    fn boolean_ops_match_naive() {
        let a = BitVec::from_ones(100, (0..100).filter(|i| i % 3 == 0));
        let b = BitVec::from_ones(100, (0..100).filter(|i| i % 5 == 0));

        let mut or = a.clone();
        or.or_assign(&b);
        let mut and = a.clone();
        and.and_assign(&b);
        let mut xor = a.clone();
        xor.xor_assign(&b);
        let mut diff = a.clone();
        diff.and_not_assign(&b);

        for i in 0..100 {
            let (x, y) = (i % 3 == 0, i % 5 == 0);
            assert_eq!(or.get(i), x || y);
            assert_eq!(and.get(i), x && y);
            assert_eq!(xor.get(i), x ^ y);
            assert_eq!(diff.get(i), x && !y);
        }
        assert_eq!(a.count_and(&b), and.count_ones());
        assert_eq!(a.count_or(&b), or.count_ones());
    }

    #[test]
    fn subset_relation() {
        let small = BitVec::from_ones(64, [1, 5, 9]);
        let big = BitVec::from_ones(64, [1, 3, 5, 9, 11]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(small.is_subset_of(&small));
    }

    #[test]
    fn ones_iterator_yields_sorted_positions() {
        let positions = vec![0, 1, 63, 64, 65, 127, 128, 199];
        let v = BitVec::from_ones(200, positions.clone());
        let got: Vec<usize> = v.iter_ones().collect();
        assert_eq!(got, positions);
    }

    #[test]
    fn ones_iterator_empty_and_full() {
        assert_eq!(BitVec::zeros(70).iter_ones().count(), 0);
        let full: Vec<usize> = BitVec::ones(70).iter_ones().collect();
        assert_eq!(full, (0..70).collect::<Vec<_>>());
    }

    #[test]
    fn tail_masking_keeps_counts_exact() {
        let mut v = BitVec::ones(65);
        assert_eq!(v.count_ones(), 65);
        v.set_all();
        assert_eq!(v.count_ones(), 65);
    }

    #[test]
    fn clear_all_keeps_len() {
        let mut v = BitVec::ones(100);
        v.clear_all();
        assert_eq!(v.len(), 100);
        assert_eq!(v.count_ones(), 0);
    }

    #[test]
    fn serialization_roundtrip() {
        let v = BitVec::from_ones(1000, (0..1000).filter(|i| i % 13 == 0));
        let bytes = v.to_bytes();
        let back = BitVec::from_bytes(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn serialization_rejects_corruption() {
        let v = BitVec::from_ones(100, [5, 50]);
        let mut bytes = v.to_bytes();
        bytes[0] = b'X';
        assert!(BitVec::from_bytes(&bytes).is_err());

        let bytes = v.to_bytes();
        assert!(BitVec::from_bytes(&bytes[..bytes.len() - 1]).is_err());

        let mut bytes = v.to_bytes();
        bytes.push(0);
        assert!(BitVec::from_bytes(&bytes).is_err());
    }

    #[test]
    fn serialization_rejects_dirty_tail() {
        let v = BitVec::zeros(10);
        let mut bytes = v.to_bytes();
        // Set a bit beyond len=10 inside the stored word.
        let last = bytes.len() - 1;
        bytes[last] = 0x80;
        assert!(BitVec::from_bytes(&bytes).is_err());
    }

    #[test]
    fn empty_vector_roundtrip() {
        let v = BitVec::zeros(0);
        assert!(v.is_empty());
        let back = BitVec::from_bytes(&v.to_bytes()).unwrap();
        assert_eq!(v, back);
        assert_eq!(v.fill_ratio(), 0.0);
    }

    #[test]
    fn copy_from_reuses_allocation() {
        let a = BitVec::from_ones(128, [0, 64, 127]);
        let mut b = BitVec::zeros(128);
        b.copy_from(&a);
        assert_eq!(a, b);
    }
}
