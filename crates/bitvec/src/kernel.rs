//! Word-parallel kernels for the probe and intersection hot loops.
//!
//! RAMBO's query path (Algorithm 2) is dominated by row-AND passes over
//! `η·|terms|` Bloom rows per table, plus the `K`-bit bitmap intersection
//! across repetitions. The loops here are written in the shape LLVM's
//! auto-vectorizer reliably turns into SIMD: four `u64` lanes per iteration,
//! no early exits inside the unrolled body, all slices pre-trimmed to one
//! length so bounds checks hoist out. [`and_rows_into_any`] additionally
//! fuses up to `N` probed rows into a *single* pass over the destination
//! mask — `N + 2` streams instead of `3N` — which is where the measured win
//! over the row-at-a-time baseline comes from (see the `probe_kernel`
//! bench). The same trick is what makes the bit-sliced COBS/Bloofi baselines
//! fast; here it is applied across buckets instead of documents.
//!
//! Liveness (`-> bool`: "does any bit survive?") is accumulated for free in
//! the unrolled body, so callers can stop probing the moment a running mask
//! goes all-zero without a separate scan.

/// `dst[i] &= rows[0][i] & rows[1][i] & … & rows[N-1][i]` for every word,
/// fused into one pass; returns `true` if any bit of `dst` remains set.
///
/// `N` is a compile-time constant (the probe loop uses 1, 2, 3 and 4), so
/// the inner reduction unrolls completely and the whole body vectorizes.
///
/// # Panics
/// Panics if any row is shorter than `dst`.
#[inline]
pub fn and_rows_into_any<const N: usize>(dst: &mut [u64], rows: [&[u64]; N]) -> bool {
    let n = dst.len();
    let rows: [&[u64]; N] = rows.map(|r| &r[..n]);
    let mut live = 0u64;
    let mut i = 0;
    // Main loop: 4 u64 lanes per iteration, N-row reduction unrolled by the
    // const generic — auto-vectorizable, `target_feature`-ready.
    while i + 4 <= n {
        let mut w0 = dst[i];
        let mut w1 = dst[i + 1];
        let mut w2 = dst[i + 2];
        let mut w3 = dst[i + 3];
        for r in &rows {
            w0 &= r[i];
            w1 &= r[i + 1];
            w2 &= r[i + 2];
            w3 &= r[i + 3];
        }
        dst[i] = w0;
        dst[i + 1] = w1;
        dst[i + 2] = w2;
        dst[i + 3] = w3;
        live |= w0 | w1 | w2 | w3;
        i += 4;
    }
    while i < n {
        let mut w = dst[i];
        for r in &rows {
            w &= r[i];
        }
        dst[i] = w;
        live |= w;
        i += 1;
    }
    live != 0
}

/// Reference row-at-a-time AND (`dst &= src`), one row per pass — the
/// pre-kernel scalar baseline, kept for the `probe_kernel` benchmark and the
/// bit-identity property tests.
///
/// # Panics
/// Panics if `src` is shorter than `dst`.
#[inline]
pub fn and_into_scalar(dst: &mut [u64], src: &[u64]) {
    let src = &src[..dst.len()];
    for (a, b) in dst.iter_mut().zip(src) {
        *a &= b;
    }
}

/// `dst[i] |= src[i]`, 4 lanes per iteration.
///
/// # Panics
/// Panics if `src` is shorter than `dst`.
#[inline]
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    let n = dst.len();
    let src = &src[..n];
    let mut i = 0;
    while i + 4 <= n {
        dst[i] |= src[i];
        dst[i + 1] |= src[i + 1];
        dst[i + 2] |= src[i + 2];
        dst[i + 3] |= src[i + 3];
        i += 4;
    }
    while i < n {
        dst[i] |= src[i];
        i += 1;
    }
}

/// Total set bits, 4 independent accumulators per iteration (breaks the
/// popcount dependency chain so the loop pipelines).
#[must_use]
pub fn popcount(words: &[u64]) -> usize {
    let mut c0 = 0usize;
    let mut c1 = 0usize;
    let mut c2 = 0usize;
    let mut c3 = 0usize;
    let mut chunks = words.chunks_exact(4);
    for c in &mut chunks {
        c0 += c[0].count_ones() as usize;
        c1 += c[1].count_ones() as usize;
        c2 += c[2].count_ones() as usize;
        c3 += c[3].count_ones() as usize;
    }
    for &w in chunks.remainder() {
        c0 += w.count_ones() as usize;
    }
    c0 + c1 + c2 + c3
}

/// True if any bit is set: OR-reduce 4 lanes per iteration, checking (and
/// early-exiting) once per chunk rather than once per word.
#[must_use]
pub fn any(words: &[u64]) -> bool {
    let mut chunks = words.chunks_exact(4);
    for c in &mut chunks {
        if c[0] | c[1] | c[2] | c[3] != 0 {
            return true;
        }
    }
    chunks.remainder().iter().any(|&w| w != 0)
}

/// Bit-sliced vertical counters: per-bit-position popcounts over a sequence
/// of equal-width word rows, updated 64 columns at a time.
///
/// Plane `k` holds bit `k` of every column's running count, so adding a row
/// is a word-parallel ripple-carry add — the same bit-sliced trick COBS uses
/// for its document rows, applied here to the `m × B` BFU matrix to compute
/// all `B` column fills in one sequential pass (no per-set-bit extraction).
/// Each add touches `O(carry depth)` planes, amortized ~2 passes per row.
#[derive(Debug)]
pub struct ColumnCounter {
    width: usize,
    /// `planes[k][w]`: bit `k` of the count of column `w·64 + b`, sliced
    /// across bit `b` of the word.
    planes: Vec<Vec<u64>>,
    /// Carries still propagating while adding one row.
    scratch: Vec<u64>,
}

impl ColumnCounter {
    /// Counters for rows of `width` words (`width · 64` columns).
    #[must_use]
    pub fn new(width: usize) -> Self {
        Self {
            width,
            planes: Vec::new(),
            scratch: vec![0; width],
        }
    }

    /// Add one row: column `c`'s counter increments iff bit `c` of the row
    /// is set.
    ///
    /// # Panics
    /// Panics if `row.len() != width`.
    pub fn add_row(&mut self, row: &[u64]) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        self.scratch.copy_from_slice(row);
        let mut carry_any = row.iter().fold(0u64, |a, &w| a | w);
        let mut k = 0;
        while carry_any != 0 {
            if k == self.planes.len() {
                self.planes.push(vec![0; self.width]);
            }
            let plane = &mut self.planes[k];
            carry_any = 0;
            // Half-adder per word: sum = plane ^ x, carry = plane & x.
            let n = self.width;
            let mut i = 0;
            while i + 4 <= n {
                let (x0, x1, x2, x3) = (
                    self.scratch[i],
                    self.scratch[i + 1],
                    self.scratch[i + 2],
                    self.scratch[i + 3],
                );
                let (c0, c1, c2, c3) = (
                    plane[i] & x0,
                    plane[i + 1] & x1,
                    plane[i + 2] & x2,
                    plane[i + 3] & x3,
                );
                plane[i] ^= x0;
                plane[i + 1] ^= x1;
                plane[i + 2] ^= x2;
                plane[i + 3] ^= x3;
                self.scratch[i] = c0;
                self.scratch[i + 1] = c1;
                self.scratch[i + 2] = c2;
                self.scratch[i + 3] = c3;
                carry_any |= c0 | c1 | c2 | c3;
                i += 4;
            }
            while i < n {
                let x = self.scratch[i];
                let c = plane[i] & x;
                plane[i] ^= x;
                self.scratch[i] = c;
                carry_any |= c;
                i += 1;
            }
            k += 1;
        }
    }

    /// Materialize the per-column counts (`width · 64` entries, column
    /// order).
    #[must_use]
    pub fn counts(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.width * 64];
        for (k, plane) in self.planes.iter().enumerate() {
            for (w, &word) in plane.iter().enumerate() {
                let mut rest = word;
                while rest != 0 {
                    let bit = rest.trailing_zeros() as usize;
                    out[w * 64 + bit] += 1 << k;
                    rest &= rest - 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(seed: u64, n: usize) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    #[test]
    fn fused_and_matches_sequential_scalar() {
        for len in [0usize, 1, 3, 4, 7, 8, 33, 257] {
            let r0 = pseudo(1, len);
            let r1 = pseudo(2, len);
            let r2 = pseudo(3, len);
            let r3 = pseudo(4, len);
            let base = pseudo(5, len);

            let mut expect = base.clone();
            for r in [&r0, &r1, &r2, &r3] {
                and_into_scalar(&mut expect, r);
            }

            let mut got = base.clone();
            let live = and_rows_into_any(&mut got, [&r0[..], &r1, &r2, &r3]);
            assert_eq!(got, expect, "len {len}");
            assert_eq!(live, expect.iter().any(|&w| w != 0), "len {len}");
        }
    }

    #[test]
    fn fused_and_all_arities() {
        let len = 67;
        let rows: Vec<Vec<u64>> = (0..4).map(|s| pseudo(s + 10, len)).collect();
        let base = pseudo(99, len);
        // N = 1, 2, 3 against the scalar reference.
        for n in 1..=3usize {
            let mut expect = base.clone();
            for r in rows.iter().take(n) {
                and_into_scalar(&mut expect, r);
            }
            let mut got = base.clone();
            let live = match n {
                1 => and_rows_into_any(&mut got, [&rows[0][..]]),
                2 => and_rows_into_any(&mut got, [&rows[0][..], &rows[1]]),
                _ => and_rows_into_any(&mut got, [&rows[0][..], &rows[1], &rows[2]]),
            };
            assert_eq!(got, expect, "N = {n}");
            assert!(live);
        }
    }

    #[test]
    fn fused_and_reports_death() {
        let mut dst = vec![u64::MAX; 9];
        let zero = [0u64; 9];
        assert!(!and_rows_into_any(&mut dst, [&zero[..]]));
        assert!(dst.iter().all(|&w| w == 0));
    }

    #[test]
    fn popcount_and_any_match_naive() {
        for len in [0usize, 1, 4, 5, 63, 64, 130] {
            let words = pseudo(7, len);
            let naive: usize = words.iter().map(|w| w.count_ones() as usize).sum();
            assert_eq!(popcount(&words), naive, "len {len}");
            assert_eq!(any(&words), naive > 0, "len {len}");
        }
        assert!(!any(&[0, 0, 0, 0, 0]));
        assert!(any(&[0, 0, 0, 0, 1]));
    }

    #[test]
    fn or_into_matches_naive() {
        let a0 = pseudo(11, 37);
        let b = pseudo(12, 37);
        let mut got = a0.clone();
        or_into(&mut got, &b);
        let expect: Vec<u64> = a0.iter().zip(&b).map(|(x, y)| x | y).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn column_counter_matches_naive() {
        let width = 3;
        let rows: Vec<Vec<u64>> = (0..300).map(|s| pseudo(s * 7 + 1, width)).collect();
        let mut cc = ColumnCounter::new(width);
        let mut naive = vec![0usize; width * 64];
        for row in &rows {
            cc.add_row(row);
            for (w, &word) in row.iter().enumerate() {
                for b in 0..64 {
                    naive[w * 64 + b] += ((word >> b) & 1) as usize;
                }
            }
        }
        assert_eq!(cc.counts(), naive);
    }

    #[test]
    fn column_counter_empty_and_sparse() {
        let mut cc = ColumnCounter::new(2);
        assert_eq!(cc.counts(), vec![0; 128]);
        cc.add_row(&[0, 0]);
        cc.add_row(&[1, 1 << 63]);
        let counts = cc.counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[127], 1);
        assert_eq!(counts.iter().sum::<usize>(), 2);
    }
}
