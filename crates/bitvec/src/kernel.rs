//! Word-parallel kernels for the probe and intersection hot loops, with
//! runtime-dispatched SIMD backends.
//!
//! RAMBO's query path (Algorithm 2) is dominated by row-AND passes over
//! `η·|terms|` Bloom rows per table, plus the `K`-bit bitmap intersection
//! across repetitions. The loops here are written in the shape LLVM's
//! auto-vectorizer reliably turns into SIMD: four `u64` lanes per iteration,
//! no early exits inside the unrolled body, all slices pre-trimmed to one
//! length so bounds checks hoist out. [`and_rows_into_any`] additionally
//! fuses up to `N` probed rows into a *single* pass over the destination
//! mask — `N + 2` streams instead of `3N` — which is where the measured win
//! over the row-at-a-time baseline comes from (see the `probe_kernel`
//! bench). The same trick is what makes the bit-sliced COBS/Bloofi baselines
//! fast; here it is applied across buckets instead of documents.
//!
//! Liveness (`-> bool`: "does any bit survive?") is accumulated for free in
//! the unrolled body, so callers can stop probing the moment a running mask
//! goes all-zero without a separate scan.
//!
//! # Backend dispatch
//!
//! Each kernel exists in two compilations, named by [`Backend`]:
//!
//! * [`Backend::Scalar`] — the portable bodies, compiled at the crate's
//!   baseline target (SSE2 on x86-64, whatever the target spec grants
//!   elsewhere). LLVM auto-vectorizes them; this is the fallback that runs
//!   anywhere.
//! * [`Backend::Avx2`] — the same entry points compiled under
//!   `#[target_feature(enable = "avx2,popcnt")]`: the fused row-AND is
//!   written directly against the 256-bit intrinsics, the rest are the
//!   portable bodies recompiled so LLVM emits 256-bit ops and real
//!   `popcnt`. Only selectable after `is_x86_feature_detected!` confirms
//!   the CPU supports it.
//!
//! The free functions ([`and_rows_into_any`], [`or_into`], [`popcount`],
//! [`any`]) and [`ColumnCounter::new`] dispatch through the process-wide
//! selection ([`Kernel::auto`]): detected once on first use, overridable
//! with the `RAMBO_KERNEL` environment variable (`scalar`, `avx2`, `auto`).
//! Every `BitVec` boolean op, every BFU-matrix probe and every column fill
//! therefore picks up the best available backend with no API change.
//! [`Kernel::forced`] pins a specific backend for A/B benchmarking and the
//! bit-identity property tests (`tests/prop.rs` proves every backend equal
//! to scalar on fuzzed geometries).
//!
//! Unsafe policy: the AVX2 variants are the crate's only unsafe code besides
//! the zero-copy word cast (see `store::cast_words`); each `unsafe` block is
//! scoped to one pointer pass or one guarded `target_feature` call and
//! carries its safety argument inline (summarized in DESIGN.md).

use std::fmt;
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Backend selection
// ---------------------------------------------------------------------------

/// One compiled implementation of the kernel entry points.
///
/// See the [module docs](self) for what each backend compiles to and how the
/// process-wide selection works.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Portable unrolled loops compiled at the crate's baseline target —
    /// auto-vectorized by LLVM, runs on every host. The reference
    /// implementation: every other backend is property-tested bit-identical
    /// to it.
    Scalar,
    /// 256-bit AVX2 compilations (`#[target_feature(enable = "avx2,popcnt")]`),
    /// selectable only where `is_x86_feature_detected!` confirms support.
    Avx2,
}

impl Backend {
    /// Every backend this build knows about, whether or not the current CPU
    /// supports it (filter with [`Backend::is_supported`]).
    pub const ALL: [Backend; 2] = [Backend::Scalar, Backend::Avx2];

    /// Can this backend run on the current CPU?
    ///
    /// [`Backend::Scalar`] is always supported; [`Backend::Avx2`] requires a
    /// runtime `is_x86_feature_detected!` check for AVX2 and POPCNT (the
    /// popcount kernel is compiled with both enabled).
    #[must_use]
    pub fn is_supported(self) -> bool {
        match self {
            Backend::Scalar => true,
            #[cfg(target_arch = "x86_64")]
            Backend::Avx2 => {
                std::arch::is_x86_feature_detected!("avx2")
                    && std::arch::is_x86_feature_detected!("popcnt")
            }
            #[cfg(not(target_arch = "x86_64"))]
            Backend::Avx2 => false,
        }
    }

    /// The best supported backend on this host: AVX2 where the CPU has it,
    /// otherwise the portable scalar fallback (silently — a host without
    /// AVX2 runs the same API at baseline speed).
    #[must_use]
    pub fn detect() -> Self {
        if Backend::Avx2.is_supported() {
            Backend::Avx2
        } else {
            Backend::Scalar
        }
    }

    /// Stable lower-case name (`"scalar"`, `"avx2"`) — the spelling
    /// [`Backend::parse`] and the `RAMBO_KERNEL` environment override accept,
    /// and what the bench JSON records.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Backend::Scalar => "scalar",
            Backend::Avx2 => "avx2",
        }
    }

    /// Parse a backend name as written by [`Backend::name`] (case-insensitive).
    /// Returns `None` for unknown names.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL
            .into_iter()
            .find(|b| b.name().eq_ignore_ascii_case(name.trim()))
    }
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error from [`Kernel::forced`]: the requested backend cannot run on this
/// CPU (e.g. [`Backend::Avx2`] on a host without AVX2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedBackend {
    backend: Backend,
}

impl UnsupportedBackend {
    /// The backend that was requested but is unavailable here.
    #[must_use]
    pub fn backend(&self) -> Backend {
        self.backend
    }
}

impl fmt::Display for UnsupportedBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kernel backend {} is not supported on this CPU",
            self.backend
        )
    }
}

impl std::error::Error for UnsupportedBackend {}

/// The process-wide backend behind the free-function kernels: resolved once,
/// on first use, from the `RAMBO_KERNEL` environment variable when set to a
/// valid supported backend, otherwise [`Backend::detect`]. An unknown or
/// unsupported override is reported to stderr once and falls back to
/// detection — a misconfigured knob must never break queries.
fn global_backend() -> Backend {
    static GLOBAL: OnceLock<Backend> = OnceLock::new();
    *GLOBAL.get_or_init(|| {
        let Ok(raw) = std::env::var("RAMBO_KERNEL") else {
            return Backend::detect();
        };
        let name = raw.trim();
        if name.is_empty() || name.eq_ignore_ascii_case("auto") {
            return Backend::detect();
        }
        match Backend::parse(name) {
            Some(b) if b.is_supported() => b,
            Some(b) => {
                eprintln!(
                    "RAMBO_KERNEL={name}: backend {b} unsupported on this CPU; \
                     falling back to {}",
                    Backend::detect()
                );
                Backend::detect()
            }
            None => {
                eprintln!(
                    "RAMBO_KERNEL={name}: unknown backend (expected scalar, avx2 \
                     or auto); falling back to {}",
                    Backend::detect()
                );
                Backend::detect()
            }
        }
    })
}

/// A dispatch handle binding the kernel entry points to one [`Backend`].
///
/// The hot paths ([`BitVec`](crate::BitVec) boolean ops, the BFU-matrix
/// probe, [`ColumnCounter`]) go through [`Kernel::auto`] — the process-wide
/// selection, so they need no plumbing. [`Kernel::forced`] pins a specific
/// backend, which is how the `probe_kernel` bench times scalar vs AVX2 on
/// the same data and how the property tests prove the backends bit-identical.
///
/// ```
/// use rambo_bitvec::kernel::{Backend, Kernel};
///
/// let auto = Kernel::auto();
/// assert!(auto.backend().is_supported());
///
/// // Pin the portable backend (always available) and use it explicitly.
/// let scalar = Kernel::forced(Backend::Scalar).unwrap();
/// let mut mask = vec![u64::MAX; 4];
/// let row = vec![0b1010u64; 4];
/// let live = scalar.and_rows_into_any(&mut mask, [&row[..]]);
/// assert!(live && mask == row);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Kernel {
    backend: Backend,
}

impl Default for Kernel {
    fn default() -> Self {
        Self::auto()
    }
}

impl Kernel {
    /// The process-wide selection: `RAMBO_KERNEL` override when valid,
    /// otherwise the best backend [`Backend::detect`] finds. Resolved once
    /// per process; this call is a cached atomic load afterwards.
    #[inline]
    #[must_use]
    pub fn auto() -> Self {
        Self {
            backend: global_backend(),
        }
    }

    /// Pin a specific backend (for benchmarking and differential tests).
    ///
    /// # Errors
    /// [`UnsupportedBackend`] when the CPU cannot run `backend` — a forced
    /// kernel never needs a runtime feature re-check afterwards, so support
    /// is verified here, exactly once.
    pub fn forced(backend: Backend) -> Result<Self, UnsupportedBackend> {
        if backend.is_supported() {
            Ok(Self { backend })
        } else {
            Err(UnsupportedBackend { backend })
        }
    }

    /// The backend this handle dispatches to.
    #[inline]
    #[must_use]
    pub const fn backend(self) -> Backend {
        self.backend
    }

    /// `dst[i] &= rows[0][i] & … & rows[N-1][i]` fused into one pass;
    /// returns `true` if any bit of `dst` remains set. See the free
    /// function [`and_rows_into_any`] for the kernel's role in the probe.
    ///
    /// # Panics
    /// Panics if any row is shorter than `dst`.
    #[inline]
    #[allow(unsafe_code)] // guarded target_feature dispatch; see SAFETY below
    pub fn and_rows_into_any<const N: usize>(self, dst: &mut [u64], rows: [&[u64]; N]) -> bool {
        match self.backend {
            Backend::Scalar => and_rows_into_any_portable(dst, rows),
            Backend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    // SAFETY: a `Kernel` holding `Backend::Avx2` is only
                    // constructed after `Backend::is_supported` confirmed
                    // AVX2+POPCNT (`auto` → `detect`, `forced` validates),
                    // so the target-feature precondition holds.
                    unsafe { avx2::and_rows_into_any(dst, rows) }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    // Unreachable (Avx2 is never supported off x86-64, so no
                    // handle can hold it); portable keeps it panic-free.
                    and_rows_into_any_portable(dst, rows)
                }
            }
        }
    }

    /// `dst[i] |= src[i]` for every word. See [`or_into`].
    ///
    /// # Panics
    /// Panics if `src` is shorter than `dst`.
    #[inline]
    #[allow(unsafe_code)] // guarded target_feature dispatch; see SAFETY below
    pub fn or_into(self, dst: &mut [u64], src: &[u64]) {
        match self.backend {
            Backend::Scalar => or_into_portable(dst, src),
            Backend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    // SAFETY: Avx2 handles exist only on CPUs that passed the
                    // `Backend::is_supported` feature check.
                    unsafe { avx2::or_into(dst, src) }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    or_into_portable(dst, src)
                }
            }
        }
    }

    /// Total set bits. See [`popcount`].
    #[inline]
    #[must_use]
    #[allow(unsafe_code)] // guarded target_feature dispatch; see SAFETY below
    pub fn popcount(self, words: &[u64]) -> usize {
        match self.backend {
            Backend::Scalar => popcount_portable(words),
            Backend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    // SAFETY: Avx2 handles exist only on CPUs that passed the
                    // `Backend::is_supported` feature check.
                    unsafe { avx2::popcount(words) }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    popcount_portable(words)
                }
            }
        }
    }

    /// True if any bit is set. See [`any`].
    #[inline]
    #[must_use]
    #[allow(unsafe_code)] // guarded target_feature dispatch; see SAFETY below
    pub fn any(self, words: &[u64]) -> bool {
        match self.backend {
            Backend::Scalar => any_portable(words),
            Backend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    // SAFETY: Avx2 handles exist only on CPUs that passed the
                    // `Backend::is_supported` feature check.
                    unsafe { avx2::any(words) }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    any_portable(words)
                }
            }
        }
    }

    /// Ripple-carry add of one row into a [`ColumnCounter`]'s bit planes
    /// (internal: `ColumnCounter::add_row` dispatches through this).
    #[inline]
    #[allow(unsafe_code)] // guarded target_feature dispatch; see SAFETY below
    fn counter_add_row(
        self,
        width: usize,
        planes: &mut Vec<Vec<u64>>,
        scratch: &mut [u64],
        row: &[u64],
    ) {
        match self.backend {
            Backend::Scalar => counter_add_row_portable(width, planes, scratch, row),
            Backend::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    // SAFETY: Avx2 handles exist only on CPUs that passed the
                    // `Backend::is_supported` feature check.
                    unsafe { avx2::counter_add_row(width, planes, scratch, row) }
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    counter_add_row_portable(width, planes, scratch, row)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatched entry points (the API the rest of the workspace calls)
// ---------------------------------------------------------------------------

/// `dst[i] &= rows[0][i] & rows[1][i] & … & rows[N-1][i]` for every word,
/// fused into one pass; returns `true` if any bit of `dst` remains set.
///
/// `N` is a compile-time constant (the probe loop uses 1, 2, 3 and 4), so
/// the inner reduction unrolls completely and the whole body vectorizes.
/// Dispatches to the process-wide [`Backend`] (see the [module docs](self));
/// use [`Kernel::forced`] to pin one explicitly.
///
/// # Panics
/// Panics if any row is shorter than `dst`.
#[inline]
pub fn and_rows_into_any<const N: usize>(dst: &mut [u64], rows: [&[u64]; N]) -> bool {
    Kernel::auto().and_rows_into_any(dst, rows)
}

/// Reference row-at-a-time AND (`dst &= src`), one row per pass — the
/// pre-kernel scalar baseline, kept for the `probe_kernel` benchmark and the
/// bit-identity property tests. Never dispatched: this is the same portable
/// loop on every host.
///
/// # Panics
/// Panics if `src` is shorter than `dst`.
#[inline]
pub fn and_into_scalar(dst: &mut [u64], src: &[u64]) {
    let src = &src[..dst.len()];
    for (a, b) in dst.iter_mut().zip(src) {
        *a &= b;
    }
}

/// `dst[i] |= src[i]`, 4 lanes per iteration, dispatched to the process-wide
/// [`Backend`].
///
/// # Panics
/// Panics if `src` is shorter than `dst`.
#[inline]
pub fn or_into(dst: &mut [u64], src: &[u64]) {
    Kernel::auto().or_into(dst, src);
}

/// Total set bits, 4 independent accumulators per iteration (breaks the
/// popcount dependency chain so the loop pipelines), dispatched to the
/// process-wide [`Backend`].
#[must_use]
pub fn popcount(words: &[u64]) -> usize {
    Kernel::auto().popcount(words)
}

/// True if any bit is set: OR-reduce 4 lanes per iteration, checking (and
/// early-exiting) once per chunk rather than once per word. Dispatched to
/// the process-wide [`Backend`].
#[must_use]
pub fn any(words: &[u64]) -> bool {
    Kernel::auto().any(words)
}

// ---------------------------------------------------------------------------
// Portable bodies — the scalar backend, and the source LLVM recompiles for
// the target_feature variants. `#[inline(always)]` so a target_feature
// wrapper inlines the body and vectorizes it under the wider feature set.
// ---------------------------------------------------------------------------

#[inline(always)]
fn and_rows_into_any_portable<const N: usize>(dst: &mut [u64], rows: [&[u64]; N]) -> bool {
    let n = dst.len();
    let rows: [&[u64]; N] = rows.map(|r| &r[..n]);
    let mut live = 0u64;
    let mut i = 0;
    // Main loop: 4 u64 lanes per iteration, N-row reduction unrolled by the
    // const generic — auto-vectorizable under whatever features the
    // enclosing compilation enables.
    while i + 4 <= n {
        let mut w0 = dst[i];
        let mut w1 = dst[i + 1];
        let mut w2 = dst[i + 2];
        let mut w3 = dst[i + 3];
        for r in &rows {
            w0 &= r[i];
            w1 &= r[i + 1];
            w2 &= r[i + 2];
            w3 &= r[i + 3];
        }
        dst[i] = w0;
        dst[i + 1] = w1;
        dst[i + 2] = w2;
        dst[i + 3] = w3;
        live |= w0 | w1 | w2 | w3;
        i += 4;
    }
    while i < n {
        let mut w = dst[i];
        for r in &rows {
            w &= r[i];
        }
        dst[i] = w;
        live |= w;
        i += 1;
    }
    live != 0
}

#[inline(always)]
fn or_into_portable(dst: &mut [u64], src: &[u64]) {
    let n = dst.len();
    let src = &src[..n];
    let mut i = 0;
    while i + 4 <= n {
        dst[i] |= src[i];
        dst[i + 1] |= src[i + 1];
        dst[i + 2] |= src[i + 2];
        dst[i + 3] |= src[i + 3];
        i += 4;
    }
    while i < n {
        dst[i] |= src[i];
        i += 1;
    }
}

#[inline(always)]
fn popcount_portable(words: &[u64]) -> usize {
    let mut c0 = 0usize;
    let mut c1 = 0usize;
    let mut c2 = 0usize;
    let mut c3 = 0usize;
    let mut chunks = words.chunks_exact(4);
    for c in &mut chunks {
        c0 += c[0].count_ones() as usize;
        c1 += c[1].count_ones() as usize;
        c2 += c[2].count_ones() as usize;
        c3 += c[3].count_ones() as usize;
    }
    for &w in chunks.remainder() {
        c0 += w.count_ones() as usize;
    }
    c0 + c1 + c2 + c3
}

#[inline(always)]
fn any_portable(words: &[u64]) -> bool {
    let mut chunks = words.chunks_exact(4);
    for c in &mut chunks {
        if c[0] | c[1] | c[2] | c[3] != 0 {
            return true;
        }
    }
    chunks.remainder().iter().any(|&w| w != 0)
}

/// The [`ColumnCounter`] ripple-carry add: plane `k` gets bit `k` of every
/// column's running count via word-parallel half-adders.
#[inline(always)]
fn counter_add_row_portable(
    width: usize,
    planes: &mut Vec<Vec<u64>>,
    scratch: &mut [u64],
    row: &[u64],
) {
    scratch.copy_from_slice(row);
    let mut carry_any = row.iter().fold(0u64, |a, &w| a | w);
    let mut k = 0;
    while carry_any != 0 {
        if k == planes.len() {
            planes.push(vec![0; width]);
        }
        let plane = &mut planes[k];
        carry_any = 0;
        // Half-adder per word: sum = plane ^ x, carry = plane & x.
        let n = width;
        let mut i = 0;
        while i + 4 <= n {
            let (x0, x1, x2, x3) = (scratch[i], scratch[i + 1], scratch[i + 2], scratch[i + 3]);
            let (c0, c1, c2, c3) = (
                plane[i] & x0,
                plane[i + 1] & x1,
                plane[i + 2] & x2,
                plane[i + 3] & x3,
            );
            plane[i] ^= x0;
            plane[i + 1] ^= x1;
            plane[i + 2] ^= x2;
            plane[i + 3] ^= x3;
            scratch[i] = c0;
            scratch[i + 1] = c1;
            scratch[i + 2] = c2;
            scratch[i + 3] = c3;
            carry_any |= c0 | c1 | c2 | c3;
            i += 4;
        }
        while i < n {
            let x = scratch[i];
            let c = plane[i] & x;
            plane[i] ^= x;
            scratch[i] = c;
            carry_any |= c;
            i += 1;
        }
        k += 1;
    }
}

// ---------------------------------------------------------------------------
// AVX2 backend — the `target_feature` compilations.
// ---------------------------------------------------------------------------

/// AVX2 variants of the kernel entry points, in two flavours:
///
/// * [`and_rows_into_any`](self::avx2::and_rows_into_any) is written
///   directly against the 256-bit intrinsics: the fused row-AND is the
///   measured hot loop, so it gets explicit two-register unrolling (8 words
///   per pass) and a register liveness accumulator tested once at the end
///   instead of per word.
/// * The rest are the portable bodies recompiled under
///   `#[target_feature(enable = "avx2,popcnt")]`: the loops are already
///   shaped for vectorization, so letting LLVM emit 256-bit ops (and a real
///   `popcnt` instruction) captures the win with zero new pointer code.
///
/// Every function here is compiled for AVX2, so *calling* one from code
/// compiled at the baseline target is unsafe: the caller must have verified
/// CPU support first. [`Kernel`] is the only caller, and it establishes that
/// invariant at construction ([`Kernel::forced`] validates, [`Kernel::auto`]
/// detects) — the safety arguments live on its dispatch sites.
#[cfg(target_arch = "x86_64")]
mod avx2 {
    use std::arch::x86_64::{
        _mm256_and_si256, _mm256_loadu_si256, _mm256_or_si256, _mm256_setzero_si256,
        _mm256_storeu_si256, _mm256_testz_si256,
    };

    /// Fused N-row AND over 256-bit registers; bit-identical to
    /// [`super::and_rows_into_any_portable`] (property-tested).
    #[allow(unsafe_code)] // pointer loads/stores; see the SAFETY arguments inline
    #[target_feature(enable = "avx2,popcnt")]
    pub(super) fn and_rows_into_any<const N: usize>(dst: &mut [u64], rows: [&[u64]; N]) -> bool {
        let n = dst.len();
        // Same panic contract as the portable body: slicing panics when a
        // row is shorter than `dst`.
        let rows: [&[u64]; N] = rows.map(|r| &r[..n]);
        let dp: *mut u64 = dst.as_mut_ptr();
        let mut live = _mm256_setzero_si256();
        let mut i = 0;
        // Two 256-bit registers (8 words) per pass; the N-row reduction is
        // unrolled by the const generic exactly like the portable loop.
        while i + 8 <= n {
            // SAFETY: `i + 8 <= n = dst.len()` and every row was re-sliced
            // to exactly `n` words above, so all 4-word loads/stores at
            // `i` and `i + 4` are in bounds. `loadu`/`storeu` carry no
            // alignment requirement. `dst` is a unique `&mut`, so the row
            // loads cannot alias the stores.
            unsafe {
                let mut w0 = _mm256_loadu_si256(dp.add(i).cast());
                let mut w1 = _mm256_loadu_si256(dp.add(i + 4).cast());
                for r in &rows {
                    let rp = r.as_ptr();
                    w0 = _mm256_and_si256(w0, _mm256_loadu_si256(rp.add(i).cast()));
                    w1 = _mm256_and_si256(w1, _mm256_loadu_si256(rp.add(i + 4).cast()));
                }
                _mm256_storeu_si256(dp.add(i).cast(), w0);
                _mm256_storeu_si256(dp.add(i + 4).cast(), w1);
                live = _mm256_or_si256(live, _mm256_or_si256(w0, w1));
            }
            i += 8;
        }
        // Scalar tail (< 8 words): safe indexing, no pointers.
        let mut tail_live = 0u64;
        while i < n {
            let mut w = dst[i];
            for r in &rows {
                w &= r[i];
            }
            dst[i] = w;
            tail_live |= w;
            i += 1;
        }
        tail_live != 0 || _mm256_testz_si256(live, live) == 0
    }

    /// [`super::or_into_portable`] recompiled for AVX2.
    #[target_feature(enable = "avx2,popcnt")]
    pub(super) fn or_into(dst: &mut [u64], src: &[u64]) {
        super::or_into_portable(dst, src);
    }

    /// [`super::popcount_portable`] recompiled for AVX2+POPCNT (the
    /// `count_ones` calls become `popcnt` instructions).
    #[target_feature(enable = "avx2,popcnt")]
    pub(super) fn popcount(words: &[u64]) -> usize {
        super::popcount_portable(words)
    }

    /// [`super::any_portable`] recompiled for AVX2.
    #[target_feature(enable = "avx2,popcnt")]
    pub(super) fn any(words: &[u64]) -> bool {
        super::any_portable(words)
    }

    /// [`super::counter_add_row_portable`] recompiled for AVX2 (the
    /// half-adder loop vectorizes to 256-bit AND/XOR).
    #[target_feature(enable = "avx2,popcnt")]
    pub(super) fn counter_add_row(
        width: usize,
        planes: &mut Vec<Vec<u64>>,
        scratch: &mut [u64],
        row: &[u64],
    ) {
        super::counter_add_row_portable(width, planes, scratch, row);
    }
}

// ---------------------------------------------------------------------------
// Bit-sliced vertical counters
// ---------------------------------------------------------------------------

/// Bit-sliced vertical counters: per-bit-position popcounts over a sequence
/// of equal-width word rows, updated 64 columns at a time.
///
/// Plane `k` holds bit `k` of every column's running count, so adding a row
/// is a word-parallel ripple-carry add — the same bit-sliced trick COBS uses
/// for its document rows, applied here to the `m × B` BFU matrix to compute
/// all `B` column fills in one sequential pass (no per-set-bit extraction).
/// Each add touches `O(carry depth)` planes, amortized ~2 passes per row.
///
/// The adds run through the counter's [`Kernel`] ([`ColumnCounter::new`]
/// uses the process-wide selection; [`ColumnCounter::with_kernel`] pins one).
#[derive(Debug)]
pub struct ColumnCounter {
    width: usize,
    /// `planes[k][w]`: bit `k` of the count of column `w·64 + b`, sliced
    /// across bit `b` of the word.
    planes: Vec<Vec<u64>>,
    /// Carries still propagating while adding one row.
    scratch: Vec<u64>,
    /// Backend the adds dispatch through.
    kernel: Kernel,
}

impl ColumnCounter {
    /// Counters for rows of `width` words (`width · 64` columns), using the
    /// process-wide kernel backend.
    #[must_use]
    pub fn new(width: usize) -> Self {
        Self::with_kernel(width, Kernel::auto())
    }

    /// [`ColumnCounter::new`] with an explicitly pinned [`Kernel`] (for
    /// benchmarking and differential tests).
    #[must_use]
    pub fn with_kernel(width: usize, kernel: Kernel) -> Self {
        Self {
            width,
            planes: Vec::new(),
            scratch: vec![0; width],
            kernel,
        }
    }

    /// Add one row: column `c`'s counter increments iff bit `c` of the row
    /// is set.
    ///
    /// # Panics
    /// Panics if `row.len() != width`.
    pub fn add_row(&mut self, row: &[u64]) {
        assert_eq!(row.len(), self.width, "row width mismatch");
        self.kernel
            .counter_add_row(self.width, &mut self.planes, &mut self.scratch, row);
    }

    /// Materialize the per-column counts (`width · 64` entries, column
    /// order).
    #[must_use]
    pub fn counts(&self) -> Vec<usize> {
        let mut out = vec![0usize; self.width * 64];
        for (k, plane) in self.planes.iter().enumerate() {
            for (w, &word) in plane.iter().enumerate() {
                let mut rest = word;
                while rest != 0 {
                    let bit = rest.trailing_zeros() as usize;
                    out[w * 64 + bit] += 1 << k;
                    rest &= rest - 1;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pseudo(seed: u64, n: usize) -> Vec<u64> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            })
            .collect()
    }

    /// Every backend the host supports (scalar always; avx2 where detected).
    fn supported() -> Vec<Kernel> {
        Backend::ALL
            .into_iter()
            .filter(|b| b.is_supported())
            .map(|b| Kernel::forced(b).unwrap())
            .collect()
    }

    #[test]
    fn fused_and_matches_sequential_scalar() {
        for kernel in supported() {
            for len in [0usize, 1, 3, 4, 7, 8, 9, 15, 16, 33, 257] {
                let r0 = pseudo(1, len);
                let r1 = pseudo(2, len);
                let r2 = pseudo(3, len);
                let r3 = pseudo(4, len);
                let base = pseudo(5, len);

                let mut expect = base.clone();
                for r in [&r0, &r1, &r2, &r3] {
                    and_into_scalar(&mut expect, r);
                }

                let mut got = base.clone();
                let live = kernel.and_rows_into_any(&mut got, [&r0[..], &r1, &r2, &r3]);
                assert_eq!(got, expect, "{} len {len}", kernel.backend());
                assert_eq!(
                    live,
                    expect.iter().any(|&w| w != 0),
                    "{} len {len}",
                    kernel.backend()
                );
            }
        }
    }

    #[test]
    fn fused_and_all_arities() {
        let len = 67;
        let rows: Vec<Vec<u64>> = (0..4).map(|s| pseudo(s + 10, len)).collect();
        let base = pseudo(99, len);
        for kernel in supported() {
            // N = 1, 2, 3 against the scalar reference.
            for n in 1..=3usize {
                let mut expect = base.clone();
                for r in rows.iter().take(n) {
                    and_into_scalar(&mut expect, r);
                }
                let mut got = base.clone();
                let live = match n {
                    1 => kernel.and_rows_into_any(&mut got, [&rows[0][..]]),
                    2 => kernel.and_rows_into_any(&mut got, [&rows[0][..], &rows[1]]),
                    _ => kernel.and_rows_into_any(&mut got, [&rows[0][..], &rows[1], &rows[2]]),
                };
                assert_eq!(got, expect, "{} N = {n}", kernel.backend());
                assert!(live);
            }
        }
    }

    #[test]
    fn fused_and_reports_death() {
        for kernel in supported() {
            let mut dst = vec![u64::MAX; 9];
            let zero = [0u64; 9];
            assert!(!kernel.and_rows_into_any(&mut dst, [&zero[..]]));
            assert!(dst.iter().all(|&w| w == 0));
        }
    }

    #[test]
    fn popcount_and_any_match_naive() {
        for kernel in supported() {
            for len in [0usize, 1, 4, 5, 7, 8, 63, 64, 130] {
                let words = pseudo(7, len);
                let naive: usize = words.iter().map(|w| w.count_ones() as usize).sum();
                assert_eq!(
                    kernel.popcount(&words),
                    naive,
                    "{} len {len}",
                    kernel.backend()
                );
                assert_eq!(
                    kernel.any(&words),
                    naive > 0,
                    "{} len {len}",
                    kernel.backend()
                );
            }
            assert!(!kernel.any(&[0, 0, 0, 0, 0]));
            assert!(kernel.any(&[0, 0, 0, 0, 1]));
        }
    }

    #[test]
    fn or_into_matches_naive() {
        for kernel in supported() {
            let a0 = pseudo(11, 37);
            let b = pseudo(12, 37);
            let mut got = a0.clone();
            kernel.or_into(&mut got, &b);
            let expect: Vec<u64> = a0.iter().zip(&b).map(|(x, y)| x | y).collect();
            assert_eq!(got, expect, "{}", kernel.backend());
        }
    }

    #[test]
    fn column_counter_matches_naive() {
        for kernel in supported() {
            let width = 3;
            let rows: Vec<Vec<u64>> = (0..300).map(|s| pseudo(s * 7 + 1, width)).collect();
            let mut cc = ColumnCounter::with_kernel(width, kernel);
            let mut naive = vec![0usize; width * 64];
            for row in &rows {
                cc.add_row(row);
                for (w, &word) in row.iter().enumerate() {
                    for b in 0..64 {
                        naive[w * 64 + b] += ((word >> b) & 1) as usize;
                    }
                }
            }
            assert_eq!(cc.counts(), naive, "{}", kernel.backend());
        }
    }

    #[test]
    fn column_counter_empty_and_sparse() {
        let mut cc = ColumnCounter::new(2);
        assert_eq!(cc.counts(), vec![0; 128]);
        cc.add_row(&[0, 0]);
        cc.add_row(&[1, 1 << 63]);
        let counts = cc.counts();
        assert_eq!(counts[0], 1);
        assert_eq!(counts[127], 1);
        assert_eq!(counts.iter().sum::<usize>(), 2);
    }

    #[test]
    fn backend_names_roundtrip() {
        for b in Backend::ALL {
            assert_eq!(Backend::parse(b.name()), Some(b));
            assert_eq!(Backend::parse(&b.name().to_uppercase()), Some(b));
            assert_eq!(format!("{b}"), b.name());
        }
        assert_eq!(Backend::parse("neon"), None);
        assert_eq!(Backend::parse(""), None);
    }

    #[test]
    fn scalar_backend_always_available() {
        assert!(Backend::Scalar.is_supported());
        assert_eq!(
            Kernel::forced(Backend::Scalar).unwrap().backend(),
            Backend::Scalar
        );
    }

    #[test]
    fn detection_returns_a_supported_backend() {
        assert!(Backend::detect().is_supported());
        assert!(Kernel::auto().backend().is_supported());
        assert_eq!(Kernel::default(), Kernel::auto());
    }

    #[test]
    fn forced_unsupported_backend_errors() {
        for b in Backend::ALL {
            match Kernel::forced(b) {
                Ok(k) => assert!(k.backend().is_supported()),
                Err(e) => {
                    assert!(!b.is_supported());
                    assert_eq!(e.backend(), b);
                    assert!(e.to_string().contains(b.name()));
                }
            }
        }
    }

    /// The free functions dispatch to the process-wide backend and must
    /// agree with the pinned scalar kernel on the same inputs.
    #[test]
    fn free_functions_match_forced_scalar() {
        let scalar = Kernel::forced(Backend::Scalar).unwrap();
        for len in [0usize, 5, 8, 64, 100] {
            let a = pseudo(21, len);
            let b = pseudo(22, len);

            let mut d1 = a.clone();
            let mut d2 = a.clone();
            let l1 = and_rows_into_any(&mut d1, [&b[..]]);
            let l2 = scalar.and_rows_into_any(&mut d2, [&b[..]]);
            assert_eq!((d1, l1), (d2, l2), "len {len}");

            let mut o1 = a.clone();
            let mut o2 = a.clone();
            or_into(&mut o1, &b);
            scalar.or_into(&mut o2, &b);
            assert_eq!(o1, o2, "len {len}");

            assert_eq!(popcount(&a), scalar.popcount(&a), "len {len}");
            assert_eq!(any(&a), scalar.any(&a), "len {len}");
        }
    }
}
