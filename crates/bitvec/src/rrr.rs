//! RRR-style compressed bitvector (Raman–Raman–Rao, reference [25] of the
//! RAMBO paper).
//!
//! The paper's Table 3 notes that HowDeSBT and SSBT owe part of their small
//! index sizes to RRR bitvector compression while "RAMBO does not compress
//! the bitvectors". To reproduce the baselines honestly we implement the
//! classic scheme:
//!
//! * the vector is cut into **blocks of 15 bits**;
//! * each block is stored as a `(class, offset)` pair — `class` is the
//!   popcount (4 bits), `offset` the block's index within the enumeration of
//!   all `C(15, class)` bit patterns (⌈log₂ C(15,class)⌉ bits, so dense and
//!   empty blocks cost almost nothing);
//! * every 32 blocks, a superblock sample stores the cumulative rank and the
//!   cumulative offset-stream bit position, making `access`/`rank1` local.
//!
//! Blocks are decoded on the fly; the structure is immutable after build.

use crate::dense::BitVec;

const BLOCK: usize = 15;
const SUPER: usize = 64; // blocks per superblock

/// `BINOM[n][k] = C(n, k)` for `n, k ≤ 15`.
const fn binomial_table() -> [[u16; BLOCK + 1]; BLOCK + 1] {
    let mut t = [[0u16; BLOCK + 1]; BLOCK + 1];
    let mut n = 0;
    while n <= BLOCK {
        t[n][0] = 1;
        let mut k = 1;
        while k <= n {
            t[n][k] = t[n - 1][k - 1] + if k < n { t[n - 1][k] } else { 0 };
            k += 1;
        }
        n += 1;
    }
    t
}

const BINOM: [[u16; BLOCK + 1]; BLOCK + 1] = binomial_table();

/// Bits needed to store an offset for a block of the given class.
const fn offset_bits_table() -> [u8; BLOCK + 1] {
    let mut t = [0u8; BLOCK + 1];
    let mut k = 0;
    while k <= BLOCK {
        let c = BINOM[BLOCK][k] as u32;
        // ceil(log2(c)) = bit length of (c - 1); c >= 1 always.
        t[k] = (32 - (c - 1).leading_zeros()) as u8;
        k += 1;
    }
    t
}

const OFFSET_BITS: [u8; BLOCK + 1] = offset_bits_table();

/// Enumerative encoding: rank of `bits` (low `BLOCK` bits meaningful) among
/// all blocks with the same popcount, in position-lexicographic order.
#[allow(clippy::needless_range_loop)]
fn encode_offset(bits: u16, mut k: usize) -> u32 {
    let mut offset = 0u32;
    for i in 0..BLOCK {
        if k == 0 {
            break;
        }
        let remaining = BLOCK - i - 1;
        if (bits >> i) & 1 == 1 {
            // Skip every pattern that has a 0 in this position.
            offset += u32::from(BINOM[remaining][k]);
            k -= 1;
        }
    }
    offset
}

/// Inverse of [`encode_offset`].
fn decode_offset(mut offset: u32, mut k: usize) -> u16 {
    let mut bits = 0u16;
    for i in 0..BLOCK {
        if k == 0 {
            break;
        }
        let remaining = BLOCK - i - 1;
        let zero_here = u32::from(BINOM[remaining][k]);
        if offset >= zero_here {
            bits |= 1 << i;
            offset -= zero_here;
            k -= 1;
        }
    }
    bits
}

/// Append-only bit stream used for the offset array.
#[derive(Debug, Default)]
struct BitWriter {
    words: Vec<u64>,
    len: usize,
}

impl BitWriter {
    fn push(&mut self, value: u32, n_bits: u8) {
        debug_assert!(n_bits <= 32);
        let mut v = u64::from(value);
        let mut remaining = usize::from(n_bits);
        while remaining > 0 {
            let word = self.len / 64;
            let bit = self.len % 64;
            if word >= self.words.len() {
                self.words.push(0);
            }
            let take = remaining.min(64 - bit);
            let mask = if take == 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            self.words[word] |= (v & mask) << bit;
            v >>= take;
            self.len += take;
            remaining -= take;
        }
    }
}

#[inline]
fn read_bits(words: &[u64], pos: usize, n_bits: u8) -> u32 {
    if n_bits == 0 {
        return 0;
    }
    let word = pos / 64;
    let bit = pos % 64;
    let n = usize::from(n_bits);
    let lo = words[word] >> bit;
    let val = if bit + n <= 64 {
        lo
    } else {
        lo | (words[word + 1] << (64 - bit))
    };
    (val & ((1u64 << n) - 1)) as u32
}

/// An immutable RRR-compressed bitvector supporting `access` and `rank1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrrVec {
    len: usize,
    /// 4-bit classes, two per byte.
    classes: Vec<u8>,
    /// Bit-packed offsets.
    offsets: Vec<u64>,
    /// Per superblock: (ones before, offset-stream bit position before).
    samples: Vec<(u64, u64)>,
    n_blocks: usize,
    total_ones: usize,
}

impl RrrVec {
    /// Compress a dense vector.
    #[must_use]
    pub fn from_bitvec(bits: &BitVec) -> Self {
        let len = bits.len();
        let n_blocks = len.div_ceil(BLOCK);
        let mut classes = vec![0u8; n_blocks.div_ceil(2)];
        let mut writer = BitWriter::default();
        let mut samples = Vec::with_capacity(n_blocks.div_ceil(SUPER));
        let mut ones = 0u64;

        for b in 0..n_blocks {
            if b % SUPER == 0 {
                samples.push((ones, writer.len as u64));
            }
            let mut block_bits = 0u16;
            let start = b * BLOCK;
            for i in 0..BLOCK.min(len - start) {
                if bits.get(start + i) {
                    block_bits |= 1 << i;
                }
            }
            let class = block_bits.count_ones() as usize;
            ones += class as u64;
            if b.is_multiple_of(2) {
                classes[b / 2] |= class as u8;
            } else {
                classes[b / 2] |= (class as u8) << 4;
            }
            writer.push(encode_offset(block_bits, class), OFFSET_BITS[class]);
        }

        Self {
            len,
            classes,
            offsets: writer.words,
            samples,
            n_blocks,
            total_ones: ones as usize,
        }
    }

    #[inline]
    fn class_of(&self, block: usize) -> usize {
        let byte = self.classes[block / 2];
        usize::from(if block.is_multiple_of(2) {
            byte & 0x0F
        } else {
            byte >> 4
        })
    }

    /// Locate `block`: returns (ones before block, offset bit-pos of block).
    fn seek(&self, block: usize) -> (usize, usize) {
        let sb = block / SUPER;
        let (mut rank, mut pos) = self.samples[sb];
        for b in sb * SUPER..block {
            let c = self.class_of(b);
            rank += c as u64;
            pos += u64::from(OFFSET_BITS[c]);
        }
        (rank as usize, pos as usize)
    }

    fn decode_block(&self, block: usize, offset_pos: usize) -> u16 {
        let class = self.class_of(block);
        let off = read_bits(&self.offsets, offset_pos, OFFSET_BITS[class]);
        decode_offset(off, class)
    }

    /// Bit length of the original vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.total_ones
    }

    /// Read bit `i` without decompressing the vector.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let block = i / BLOCK;
        let (_, pos) = self.seek(block);
        let bits = self.decode_block(block, pos);
        (bits >> (i % BLOCK)) & 1 == 1
    }

    /// Number of set bits strictly before `i`.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    pub fn rank1(&self, i: usize) -> usize {
        assert!(i <= self.len, "rank index out of range");
        if i == self.len {
            return self.total_ones;
        }
        let block = i / BLOCK;
        let (rank, pos) = self.seek(block);
        let bits = self.decode_block(block, pos);
        let within = i % BLOCK;
        rank + (bits & ((1u16 << within) - 1)).count_ones() as usize
    }

    /// Decompress back to a dense vector.
    #[must_use]
    pub fn to_bitvec(&self) -> BitVec {
        let mut out = BitVec::zeros(self.len);
        let mut pos = 0usize;
        for b in 0..self.n_blocks {
            let class = self.class_of(b);
            let off = read_bits(&self.offsets, pos, OFFSET_BITS[class]);
            pos += usize::from(OFFSET_BITS[class]);
            let bits = decode_offset(off, class);
            let start = b * BLOCK;
            let mut rest = bits;
            while rest != 0 {
                let tz = rest.trailing_zeros() as usize;
                out.set(start + tz);
                rest &= rest - 1;
            }
        }
        out
    }

    /// Heap bytes of the compressed representation (classes + offsets +
    /// samples). Compare against `BitVec::size_bytes` for the ratio.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.classes.len() + self.offsets.len() * 8 + self.samples.len() * 16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomials_are_correct() {
        assert_eq!(BINOM[15][0], 1);
        assert_eq!(BINOM[15][1], 15);
        assert_eq!(BINOM[15][7], 6435);
        assert_eq!(BINOM[15][15], 1);
        assert_eq!(BINOM[4][2], 6);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn offset_codec_roundtrips_every_class() {
        for k in 0..=BLOCK {
            // Enumerate a spread of patterns with popcount k.
            let mut tested = 0;
            for bits in 0u16..(1 << BLOCK) {
                if bits.count_ones() as usize == k {
                    let off = encode_offset(bits, k);
                    assert!(off < u32::from(BINOM[BLOCK][k]), "offset in range");
                    assert_eq!(decode_offset(off, k), bits, "class {k} bits {bits:#b}");
                    tested += 1;
                    if tested > 200 {
                        break; // keep the test fast; coverage is already broad
                    }
                }
            }
            assert!(tested > 0);
        }
    }

    #[test]
    fn offsets_are_dense_ranks() {
        // For a small class, offsets must be exactly 0..C(15,k) with no gaps.
        let k = 2;
        let mut offsets: Vec<u32> = (0u16..(1 << BLOCK))
            .filter(|b| b.count_ones() == k)
            .map(|b| encode_offset(b, k as usize))
            .collect();
        offsets.sort_unstable();
        let expect: Vec<u32> = (0..u32::from(BINOM[BLOCK][k as usize])).collect();
        assert_eq!(offsets, expect);
    }

    #[test]
    fn access_matches_dense() {
        let dense = BitVec::from_ones(1234, (0..1234).filter(|i| i % 3 == 0 || i % 17 == 0));
        let rrr = RrrVec::from_bitvec(&dense);
        assert_eq!(rrr.len(), 1234);
        assert_eq!(rrr.count_ones(), dense.count_ones());
        for i in 0..1234 {
            assert_eq!(rrr.get(i), dense.get(i), "bit {i}");
        }
    }

    #[test]
    fn rank_matches_naive() {
        let dense = BitVec::from_ones(2000, (0..2000).filter(|i| i % 5 == 0));
        let rrr = RrrVec::from_bitvec(&dense);
        let mut acc = 0usize;
        for i in 0..2000 {
            assert_eq!(rrr.rank1(i), acc, "rank1({i})");
            if dense.get(i) {
                acc += 1;
            }
        }
        assert_eq!(rrr.rank1(2000), acc);
    }

    #[test]
    fn to_bitvec_roundtrip() {
        let dense = BitVec::from_ones(999, (0..999).filter(|i| (i * i) % 7 == 1));
        let rrr = RrrVec::from_bitvec(&dense);
        assert_eq!(rrr.to_bitvec(), dense);
    }

    #[test]
    fn sparse_vectors_compress() {
        // 1% fill: RRR should be far below the dense 12.5 KB.
        let dense = BitVec::from_ones(100_000, (0..100_000).step_by(100));
        let rrr = RrrVec::from_bitvec(&dense);
        assert!(
            rrr.size_bytes() < dense.size_bytes() * 6 / 10,
            "rrr {} vs dense {}",
            rrr.size_bytes(),
            dense.size_bytes()
        );
        assert_eq!(rrr.to_bitvec(), dense);
    }

    #[test]
    fn dense_vectors_also_roundtrip() {
        let dense = BitVec::ones(500);
        let rrr = RrrVec::from_bitvec(&dense);
        assert_eq!(rrr.count_ones(), 500);
        assert_eq!(rrr.to_bitvec(), dense);
    }

    #[test]
    fn empty_vector() {
        let rrr = RrrVec::from_bitvec(&BitVec::zeros(0));
        assert!(rrr.is_empty());
        assert_eq!(rrr.count_ones(), 0);
        assert_eq!(rrr.to_bitvec(), BitVec::zeros(0));
    }

    #[test]
    fn partial_final_block() {
        // len = 20 → one full block + 5-bit tail.
        let dense = BitVec::from_ones(20, [0, 14, 15, 19]);
        let rrr = RrrVec::from_bitvec(&dense);
        for i in 0..20 {
            assert_eq!(rrr.get(i), dense.get(i));
        }
        assert_eq!(rrr.rank1(20), 4);
    }
}
