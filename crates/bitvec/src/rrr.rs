//! RRR-style compressed bitvector (Raman–Raman–Rao, reference [25] of the
//! RAMBO paper).
//!
//! The paper's Table 3 notes that HowDeSBT and SSBT owe part of their small
//! index sizes to RRR bitvector compression while "RAMBO does not compress
//! the bitvectors". To reproduce the baselines honestly we implement the
//! classic scheme:
//!
//! * the vector is cut into **blocks of 15 bits**;
//! * each block is stored as a `(class, offset)` pair — `class` is the
//!   popcount (4 bits), `offset` the block's index within the enumeration of
//!   all `C(15, class)` bit patterns (⌈log₂ C(15,class)⌉ bits, so dense and
//!   empty blocks cost almost nothing);
//! * every `SUPER` (= 64) blocks, a superblock sample stores the
//!   cumulative rank and the cumulative offset-stream bit position, making
//!   `access`/`rank1` local (pinned by the
//!   `superblock_sampling_interval_matches_constant` test).
//!
//! Blocks are decoded on the fly; the structure is immutable after build.
//! Two containers share the codec:
//!
//! * [`RrrVec`] — a single vector with `access`/`rank1`, serializable via
//!   the v2 `RRV2` framing;
//! * [`RrrMatrix`] — an `m × B` row-major matrix where each row is an
//!   independently addressable RRR stream (per-row start samples), the
//!   compressed cold-tier backend behind the BFU probe path. Rows decode
//!   block-wise into dense words ([`RrrMatrix::decode_row_into`]) that feed
//!   the fused-AND mask kernels unchanged.

use crate::dense::BitVec;
use crate::error::DecodeError;
use crate::store::{skip_word_padding, write_word_padding};

const BLOCK: usize = 15;
const SUPER: usize = 64; // blocks per superblock

/// `BINOM[n][k] = C(n, k)` for `n, k ≤ 15`.
const fn binomial_table() -> [[u16; BLOCK + 1]; BLOCK + 1] {
    let mut t = [[0u16; BLOCK + 1]; BLOCK + 1];
    let mut n = 0;
    while n <= BLOCK {
        t[n][0] = 1;
        let mut k = 1;
        while k <= n {
            t[n][k] = t[n - 1][k - 1] + if k < n { t[n - 1][k] } else { 0 };
            k += 1;
        }
        n += 1;
    }
    t
}

const BINOM: [[u16; BLOCK + 1]; BLOCK + 1] = binomial_table();

/// Bits needed to store an offset for a block of the given class.
const fn offset_bits_table() -> [u8; BLOCK + 1] {
    let mut t = [0u8; BLOCK + 1];
    let mut k = 0;
    while k <= BLOCK {
        let c = BINOM[BLOCK][k] as u32;
        // ceil(log2(c)) = bit length of (c - 1); c >= 1 always.
        t[k] = (32 - (c - 1).leading_zeros()) as u8;
        k += 1;
    }
    t
}

const OFFSET_BITS: [u8; BLOCK + 1] = offset_bits_table();

/// v2 serialization magic for a standalone [`RrrVec`].
const VEC_MAGIC: &[u8; 4] = b"RRV2";
/// v2 serialization magic for an [`RrrMatrix`] (compressed BFU tier).
const MAT_MAGIC: &[u8; 4] = b"RBFR";

/// Class of nibble `b` in a packed class array (two 4-bit classes per byte).
#[inline]
fn class_at(classes: &[u8], b: usize) -> usize {
    let byte = classes[b / 2];
    usize::from(if b.is_multiple_of(2) {
        byte & 0x0F
    } else {
        byte >> 4
    })
}

/// Pack `class` into nibble `b` of `classes` (which must be zeroed).
#[inline]
fn set_class(classes: &mut [u8], b: usize, class: usize) {
    if b.is_multiple_of(2) {
        classes[b / 2] |= class as u8;
    } else {
        classes[b / 2] |= (class as u8) << 4;
    }
}

/// Split `n` leading bytes off a decode cursor, or fail with a truncation
/// error naming `what`.
fn take<'a>(buf: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8], DecodeError> {
    if buf.len() < n {
        return Err(DecodeError::new(format!("{what} truncated")));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

/// Read a little-endian `u64` field off a decode cursor as `usize`.
fn take_u64(buf: &mut &[u8], what: &str) -> Result<usize, DecodeError> {
    let raw = take(buf, 8, what)?;
    let v = u64::from_le_bytes(raw.try_into().expect("8-byte field"));
    usize::try_from(v).map_err(|_| DecodeError::new(format!("{what} exceeds address space")))
}

/// Enumerative encoding: rank of `bits` (low `BLOCK` bits meaningful) among
/// all blocks with the same popcount, in position-lexicographic order.
#[allow(clippy::needless_range_loop)]
fn encode_offset(bits: u16, mut k: usize) -> u32 {
    let mut offset = 0u32;
    for i in 0..BLOCK {
        if k == 0 {
            break;
        }
        let remaining = BLOCK - i - 1;
        if (bits >> i) & 1 == 1 {
            // Skip every pattern that has a 0 in this position.
            offset += u32::from(BINOM[remaining][k]);
            k -= 1;
        }
    }
    offset
}

/// Inverse of [`encode_offset`].
fn decode_offset(mut offset: u32, mut k: usize) -> u16 {
    let mut bits = 0u16;
    for i in 0..BLOCK {
        if k == 0 {
            break;
        }
        let remaining = BLOCK - i - 1;
        let zero_here = u32::from(BINOM[remaining][k]);
        if offset >= zero_here {
            bits |= 1 << i;
            offset -= zero_here;
            k -= 1;
        }
    }
    bits
}

/// Append-only bit stream used for the offset array.
#[derive(Debug, Default)]
struct BitWriter {
    words: Vec<u64>,
    len: usize,
}

impl BitWriter {
    fn push(&mut self, value: u32, n_bits: u8) {
        debug_assert!(n_bits <= 32);
        let mut v = u64::from(value);
        let mut remaining = usize::from(n_bits);
        while remaining > 0 {
            let word = self.len / 64;
            let bit = self.len % 64;
            if word >= self.words.len() {
                self.words.push(0);
            }
            let take = remaining.min(64 - bit);
            let mask = if take == 64 {
                u64::MAX
            } else {
                (1u64 << take) - 1
            };
            self.words[word] |= (v & mask) << bit;
            v >>= take;
            self.len += take;
            remaining -= take;
        }
    }
}

#[inline]
fn read_bits(words: &[u64], pos: usize, n_bits: u8) -> u32 {
    if n_bits == 0 {
        return 0;
    }
    let word = pos / 64;
    let bit = pos % 64;
    let n = usize::from(n_bits);
    let lo = words[word] >> bit;
    let val = if bit + n <= 64 {
        lo
    } else {
        lo | (words[word + 1] << (64 - bit))
    };
    (val & ((1u64 << n) - 1)) as u32
}

/// An immutable RRR-compressed bitvector supporting `access` and `rank1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrrVec {
    len: usize,
    /// 4-bit classes, two per byte.
    classes: Vec<u8>,
    /// Bit-packed offsets.
    offsets: Vec<u64>,
    /// Per superblock: (ones before, offset-stream bit position before).
    samples: Vec<(u64, u64)>,
    n_blocks: usize,
    total_ones: usize,
    /// Bit length of the offset stream (for serialization framing).
    offset_bits: usize,
}

impl RrrVec {
    /// Compress a dense vector.
    #[must_use]
    pub fn from_bitvec(bits: &BitVec) -> Self {
        let len = bits.len();
        let n_blocks = len.div_ceil(BLOCK);
        let mut classes = vec![0u8; n_blocks.div_ceil(2)];
        let mut writer = BitWriter::default();
        let mut samples = Vec::with_capacity(n_blocks.div_ceil(SUPER));
        let mut ones = 0u64;

        for b in 0..n_blocks {
            if b % SUPER == 0 {
                samples.push((ones, writer.len as u64));
            }
            let mut block_bits = 0u16;
            let start = b * BLOCK;
            for i in 0..BLOCK.min(len - start) {
                if bits.get(start + i) {
                    block_bits |= 1 << i;
                }
            }
            let class = block_bits.count_ones() as usize;
            ones += class as u64;
            set_class(&mut classes, b, class);
            writer.push(encode_offset(block_bits, class), OFFSET_BITS[class]);
        }

        Self {
            len,
            classes,
            offset_bits: writer.len,
            offsets: writer.words,
            samples,
            n_blocks,
            total_ones: ones as usize,
        }
    }

    #[inline]
    fn class_of(&self, block: usize) -> usize {
        class_at(&self.classes, block)
    }

    /// Locate `block`: returns (ones before block, offset bit-pos of block).
    fn seek(&self, block: usize) -> (usize, usize) {
        let sb = block / SUPER;
        let (mut rank, mut pos) = self.samples[sb];
        for b in sb * SUPER..block {
            let c = self.class_of(b);
            rank += c as u64;
            pos += u64::from(OFFSET_BITS[c]);
        }
        (rank as usize, pos as usize)
    }

    fn decode_block(&self, block: usize, offset_pos: usize) -> u16 {
        let class = self.class_of(block);
        let off = read_bits(&self.offsets, offset_pos, OFFSET_BITS[class]);
        decode_offset(off, class)
    }

    /// Bit length of the original vector.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Total set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.total_ones
    }

    /// Read bit `i` without decompressing the vector.
    ///
    /// # Panics
    /// Panics if `i >= len()`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let block = i / BLOCK;
        let (_, pos) = self.seek(block);
        let bits = self.decode_block(block, pos);
        (bits >> (i % BLOCK)) & 1 == 1
    }

    /// Number of set bits strictly before `i`.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    pub fn rank1(&self, i: usize) -> usize {
        assert!(i <= self.len, "rank index out of range");
        if i == self.len {
            return self.total_ones;
        }
        let block = i / BLOCK;
        let (rank, pos) = self.seek(block);
        let bits = self.decode_block(block, pos);
        let within = i % BLOCK;
        rank + (bits & ((1u16 << within) - 1)).count_ones() as usize
    }

    /// Decompress back to a dense vector.
    #[must_use]
    pub fn to_bitvec(&self) -> BitVec {
        let mut out = BitVec::zeros(self.len);
        let mut pos = 0usize;
        for b in 0..self.n_blocks {
            let class = self.class_of(b);
            let off = read_bits(&self.offsets, pos, OFFSET_BITS[class]);
            pos += usize::from(OFFSET_BITS[class]);
            let bits = decode_offset(off, class);
            let start = b * BLOCK;
            let mut rest = bits;
            while rest != 0 {
                let tz = rest.trailing_zeros() as usize;
                out.set(start + tz);
                rest &= rest - 1;
            }
        }
        out
    }

    /// Heap bytes of the compressed representation (classes + offsets +
    /// samples). Compare against `BitVec::size_bytes` for the ratio.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.classes.len() + self.offsets.len() * 8 + self.samples.len() * 16
    }

    /// Append the v2 binary encoding: `RRV2` magic, bit length, offset-stream
    /// bit length, word-alignment padding, the class nibbles (zero-padded to
    /// a word boundary) and the offset words. Superblock samples are *not*
    /// stored — they are rebuilt during the decode validation walk.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(VEC_MAGIC);
        out.extend_from_slice(&(self.len as u64).to_le_bytes());
        out.extend_from_slice(&(self.offset_bits as u64).to_le_bytes());
        write_word_padding(out);
        out.extend_from_slice(&self.classes);
        out.resize(out.len() + word_pad(self.classes.len()), 0);
        for &w in &self.offsets {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// The v2 encoding as a fresh buffer (see [`RrrVec::encode_into`]).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decode, advancing the buffer past the consumed bytes.
    ///
    /// Every structural invariant is re-validated, so corrupted or truncated
    /// input yields an error — never a panic or an out-of-range decode:
    /// offsets must stay below `C(15, class)`, the stream length must match
    /// the class array exactly, the final block may not carry bits beyond
    /// `len`, and all padding (nibble, byte and trailing stream bits) must
    /// be zero.
    ///
    /// # Errors
    /// [`DecodeError`] on any format violation.
    pub fn decode_from(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let magic = take(buf, 4, "rrr vector header")?;
        if magic != VEC_MAGIC {
            return Err(DecodeError::new("bad rrr vector magic"));
        }
        let len = take_u64(buf, "rrr vector length")?;
        let offset_bits = take_u64(buf, "rrr offset-stream length")?;
        skip_word_padding(buf)?;
        let n_blocks = len.div_ceil(BLOCK);
        let (classes, offsets) = decode_streams(buf, n_blocks, offset_bits)?;

        // Validation walk: recompute the superblock samples while checking
        // every block of the stream.
        let mut samples = Vec::with_capacity(n_blocks.div_ceil(SUPER));
        let mut pos = 0usize;
        let mut ones = 0u64;
        for b in 0..n_blocks {
            if b % SUPER == 0 {
                samples.push((ones, pos as u64));
            }
            let class = class_at(&classes, b);
            let tail = if b == n_blocks - 1 {
                len - b * BLOCK
            } else {
                BLOCK
            };
            pos = check_block(&offsets, pos, offset_bits, class, tail)?;
            ones += class as u64;
        }
        if pos != offset_bits {
            return Err(DecodeError::new("rrr offset stream length mismatch"));
        }
        Ok(Self {
            len,
            classes,
            offsets,
            samples,
            n_blocks,
            total_ones: ones as usize,
            offset_bits,
        })
    }

    /// Decode a complete buffer (see [`RrrVec::decode_from`]).
    ///
    /// # Errors
    /// [`DecodeError`] on any format violation or trailing bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut slice = bytes;
        let v = Self::decode_from(&mut slice)?;
        if !slice.is_empty() {
            return Err(DecodeError::new("trailing bytes after rrr vector"));
        }
        Ok(v)
    }
}

/// Zero bytes needed after `len` payload bytes to reach a word boundary.
#[inline]
fn word_pad(len: usize) -> usize {
    len.next_multiple_of(8) - len
}

/// Decode the class-nibble array and offset words shared by the `RRV2` and
/// `RBFR` framings, validating all padding bytes/nibbles/bits are zero.
fn decode_streams(
    buf: &mut &[u8],
    n_blocks: usize,
    offset_bits: usize,
) -> Result<(Vec<u8>, Vec<u64>), DecodeError> {
    let classes_len = n_blocks.div_ceil(2);
    let padded = classes_len
        .checked_add(word_pad(classes_len))
        .ok_or_else(|| DecodeError::new("rrr class array size overflow"))?;
    let n_off_words = offset_bits.div_ceil(64);
    let class_bytes = take(buf, padded, "rrr class array")?;
    if class_bytes[classes_len..].iter().any(|&b| b != 0) {
        return Err(DecodeError::new("rrr class array padding not zero"));
    }
    let classes = class_bytes[..classes_len].to_vec();
    if !n_blocks.is_multiple_of(2) && classes_len > 0 && classes[classes_len - 1] >> 4 != 0 {
        return Err(DecodeError::new("rrr class nibble padding not zero"));
    }
    let payload_len = n_off_words
        .checked_mul(8)
        .ok_or_else(|| DecodeError::new("rrr offset stream size overflow"))?;
    let off_bytes = take(buf, payload_len, "rrr offset stream")?;
    let offsets: Vec<u64> = off_bytes
        .chunks_exact(8)
        .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8")))
        .collect();
    if !offset_bits.is_multiple_of(64) && n_off_words > 0 {
        let last = offsets[n_off_words - 1];
        if last >> (offset_bits % 64) != 0 {
            return Err(DecodeError::new("rrr offset stream trailing bits set"));
        }
    }
    Ok((classes, offsets))
}

/// Validate one block at stream position `pos`: the offset must fit the
/// stream and stay below `C(15, class)`, and a partial final block (`tail <
/// BLOCK` significant bits) may not decode bits beyond its tail. Returns the
/// position of the next block.
fn check_block(
    offsets: &[u64],
    pos: usize,
    offset_bits: usize,
    class: usize,
    tail: usize,
) -> Result<usize, DecodeError> {
    let nb = usize::from(OFFSET_BITS[class]);
    if pos + nb > offset_bits {
        return Err(DecodeError::new("rrr offset stream overrun"));
    }
    let off = read_bits(offsets, pos, OFFSET_BITS[class]);
    if off >= u32::from(BINOM[BLOCK][class]) {
        return Err(DecodeError::new("rrr offset out of range for class"));
    }
    if tail < BLOCK && decode_offset(off, class) >> tail != 0 {
        return Err(DecodeError::new("rrr bits set beyond vector length"));
    }
    Ok(pos + nb)
}

/// An `m × B` bit matrix stored as one RRR stream per row.
///
/// This is the compressed storage backend for cold BFU tiers: each of the
/// `m_bits` rows is an independently addressable `buckets`-bit RRR vector
/// whose offset-stream start is sampled per row (`row_starts`), so a probe
/// decodes exactly the rows it touches — block-wise, straight into dense
/// words that feed the fused-AND mask kernels ([`crate::BitVec`]'s
/// `and_words_any`) with no intermediate bitvector.
///
/// The structure is immutable; build it from a dense row-major word payload
/// with [`RrrMatrix::from_words`]. Mutation paths in callers are expected to
/// materialize a dense copy first. Serialization uses the v2 `RBFR` framing;
/// like the dense matrix codec, decoding re-validates every structural
/// invariant so hostile input errors instead of panicking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RrrMatrix {
    /// Number of rows (`m`).
    m_bits: usize,
    /// Logical bits per row (`B`).
    buckets: usize,
    /// 15-bit blocks per row (`⌈B/15⌉`).
    blocks_per_row: usize,
    /// 4-bit classes, two per byte, row-major (nibble `p·blocks_per_row+b`).
    classes: Vec<u8>,
    /// One bit-packed offset stream for all rows, row-major.
    offsets: Vec<u64>,
    /// Per-row start bit position in the offset stream (rebuilt on decode).
    row_starts: Vec<u64>,
    /// Bit length of the offset stream.
    offset_bits: usize,
    /// Total set bits (diagnostics).
    total_ones: u64,
}

impl RrrMatrix {
    /// The `RBFR` serialization magic — lets container decoders dispatch
    /// between dense and compressed matrix records by peeking 4 bytes.
    pub const MAGIC: [u8; 4] = *MAT_MAGIC;

    /// Compress a dense row-major word payload (`m_bits · ⌈buckets/64⌉`
    /// words; bits at positions `≥ buckets` in each row's final word must be
    /// zero — the dense matrix invariant).
    ///
    /// # Panics
    /// Panics on zero dimensions or a payload length mismatch.
    #[must_use]
    pub fn from_words(words: &[u64], m_bits: usize, buckets: usize) -> Self {
        assert!(m_bits > 0 && buckets > 0, "zero matrix dimension");
        let row_words = buckets.div_ceil(64);
        assert_eq!(words.len(), m_bits * row_words, "payload length mismatch");
        let bpr = buckets.div_ceil(BLOCK);
        let mut classes = vec![0u8; (m_bits * bpr).div_ceil(2)];
        let mut writer = BitWriter::default();
        let mut row_starts = Vec::with_capacity(m_bits);
        let mut ones = 0u64;
        for p in 0..m_bits {
            row_starts.push(writer.len as u64);
            let row = &words[p * row_words..(p + 1) * row_words];
            for b in 0..bpr {
                let start = b * BLOCK;
                let take_bits = BLOCK.min(buckets - start);
                let bits = read_bits(row, start, take_bits as u8) as u16;
                let class = bits.count_ones() as usize;
                ones += class as u64;
                set_class(&mut classes, p * bpr + b, class);
                writer.push(encode_offset(bits, class), OFFSET_BITS[class]);
            }
        }
        Self {
            m_bits,
            buckets,
            blocks_per_row: bpr,
            classes,
            offset_bits: writer.len,
            offsets: writer.words,
            row_starts,
            total_ones: ones,
        }
    }

    /// Number of rows (`m`).
    #[must_use]
    pub fn m_bits(&self) -> usize {
        self.m_bits
    }

    /// Logical bits per row (`B`).
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.buckets
    }

    /// Words per dense row (`⌈B/64⌉`) — the `out` length
    /// [`RrrMatrix::decode_row_into`] expects.
    #[must_use]
    pub fn row_words(&self) -> usize {
        self.buckets.div_ceil(64)
    }

    /// Total set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.total_ones as usize
    }

    /// Decode row `p` into dense words. `out` is fully overwritten; bits at
    /// positions `≥ buckets` in the final word come out zero, so the result
    /// can feed the masked AND kernels directly.
    ///
    /// # Panics
    /// Panics if `p` is out of range or `out` is not `row_words()` long.
    pub fn decode_row_into(&self, p: usize, out: &mut [u64]) {
        assert_eq!(out.len(), self.row_words(), "row buffer length mismatch");
        out.fill(0);
        let mut pos = self.row_starts[p] as usize;
        let base = p * self.blocks_per_row;
        for b in 0..self.blocks_per_row {
            let class = class_at(&self.classes, base + b);
            let off = read_bits(&self.offsets, pos, OFFSET_BITS[class]);
            pos += usize::from(OFFSET_BITS[class]);
            if class == 0 {
                continue;
            }
            let bits = u64::from(decode_offset(off, class));
            let bitpos = b * BLOCK;
            let (w, s) = (bitpos / 64, bitpos % 64);
            out[w] |= bits << s;
            if s + BLOCK > 64 && w + 1 < out.len() {
                out[w + 1] |= bits >> (64 - s);
            }
        }
    }

    /// Read one bit without decoding the whole row. O(blocks_per_row) —
    /// used by candidate-bucket probes, not the row-probe hot path.
    ///
    /// # Panics
    /// Panics if `p` or `bit` is out of range.
    #[must_use]
    pub fn get(&self, p: usize, bit: usize) -> bool {
        assert!(p < self.m_bits && bit < self.buckets, "index out of range");
        let block = bit / BLOCK;
        let base = p * self.blocks_per_row;
        let mut pos = self.row_starts[p] as usize;
        for b in 0..block {
            pos += usize::from(OFFSET_BITS[class_at(&self.classes, base + b)]);
        }
        let class = class_at(&self.classes, base + block);
        let bits = decode_offset(read_bits(&self.offsets, pos, OFFSET_BITS[class]), class);
        (bits >> (bit % BLOCK)) & 1 == 1
    }

    /// Heap bytes of the compressed representation (classes + offset stream
    /// + per-row samples). Compare against the dense `m·⌈B/64⌉·8`.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.classes.len() + self.offsets.len() * 8 + self.row_starts.len() * 8
    }

    /// Append the v2 binary encoding: `RBFR` magic, rows, columns,
    /// offset-stream bit length, word-alignment padding, class nibbles
    /// (zero-padded to a word boundary) and offset words. Row-start samples
    /// are rebuilt on decode. The total encoding is a whole number of words
    /// when `out` started word-aligned, preserving the catalog's
    /// concatenation invariant.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(MAT_MAGIC);
        out.extend_from_slice(&(self.m_bits as u64).to_le_bytes());
        out.extend_from_slice(&(self.buckets as u64).to_le_bytes());
        out.extend_from_slice(&(self.offset_bits as u64).to_le_bytes());
        write_word_padding(out);
        out.extend_from_slice(&self.classes);
        out.resize(out.len() + word_pad(self.classes.len()), 0);
        for &w in &self.offsets {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }

    /// Total encoded byte length of the `RBFR` record starting at `buf[0]`,
    /// parsed from the header alone (`buf` may be a prefix). Lets a paged
    /// loader size its read without decoding the payload.
    ///
    /// # Errors
    /// [`DecodeError`] when the prefix is not an `RBFR` header.
    pub fn peek_encoded_len(mut buf: &[u8]) -> Result<usize, DecodeError> {
        let start = buf.len();
        let (m_bits, buckets, offset_bits) = Self::decode_header(&mut buf)?;
        let consumed = start - buf.len();
        let bpr = buckets.div_ceil(BLOCK);
        let nibbles = m_bits
            .checked_mul(bpr)
            .ok_or_else(|| DecodeError::new("rrr matrix size overflow"))?;
        let classes_len = nibbles.div_ceil(2);
        classes_len
            .checked_add(word_pad(classes_len))
            .and_then(|c| offset_bits.div_ceil(64).checked_mul(8).map(|o| (c, o)))
            .and_then(|(c, o)| c.checked_add(o))
            .and_then(|p| p.checked_add(consumed))
            .ok_or_else(|| DecodeError::new("rrr matrix size overflow"))
    }

    /// Parse the fixed header and padding, advancing `buf` to the class
    /// array. Returns `(m_bits, buckets, offset_bits)`.
    fn decode_header(buf: &mut &[u8]) -> Result<(usize, usize, usize), DecodeError> {
        let magic = take(buf, 4, "rrr matrix header")?;
        if magic != MAT_MAGIC {
            return Err(DecodeError::new("bad rrr matrix magic"));
        }
        let m_bits = take_u64(buf, "rrr matrix rows")?;
        let buckets = take_u64(buf, "rrr matrix columns")?;
        let offset_bits = take_u64(buf, "rrr matrix offset-stream length")?;
        if m_bits == 0 || buckets == 0 {
            return Err(DecodeError::new("rrr matrix with zero dimension"));
        }
        skip_word_padding(buf)?;
        Ok((m_bits, buckets, offset_bits))
    }

    /// Decode, advancing the buffer past the consumed bytes. Re-validates
    /// every block (offset ranges, per-row tail blocks, stream length and
    /// all padding) while rebuilding the row-start samples, so corrupted or
    /// truncated input errors rather than panicking.
    ///
    /// # Errors
    /// [`DecodeError`] on any format violation.
    pub fn decode_from(buf: &mut &[u8]) -> Result<Self, DecodeError> {
        let (m_bits, buckets, offset_bits) = Self::decode_header(buf)?;
        let bpr = buckets.div_ceil(BLOCK);
        let nibbles = m_bits
            .checked_mul(bpr)
            .ok_or_else(|| DecodeError::new("rrr matrix size overflow"))?;
        let (classes, offsets) = decode_streams(buf, nibbles, offset_bits)?;

        let tail_bits = buckets - (bpr - 1) * BLOCK;
        let mut row_starts = Vec::with_capacity(m_bits);
        let mut pos = 0usize;
        let mut ones = 0u64;
        for p in 0..m_bits {
            row_starts.push(pos as u64);
            let base = p * bpr;
            for b in 0..bpr {
                let class = class_at(&classes, base + b);
                let tail = if b == bpr - 1 { tail_bits } else { BLOCK };
                pos = check_block(&offsets, pos, offset_bits, class, tail)?;
                ones += class as u64;
            }
        }
        if pos != offset_bits {
            return Err(DecodeError::new("rrr matrix offset stream length mismatch"));
        }
        Ok(Self {
            m_bits,
            buckets,
            blocks_per_row: bpr,
            classes,
            offsets,
            row_starts,
            offset_bits,
            total_ones: ones,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binomials_are_correct() {
        assert_eq!(BINOM[15][0], 1);
        assert_eq!(BINOM[15][1], 15);
        assert_eq!(BINOM[15][7], 6435);
        assert_eq!(BINOM[15][15], 1);
        assert_eq!(BINOM[4][2], 6);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn offset_codec_roundtrips_every_class() {
        for k in 0..=BLOCK {
            // Enumerate a spread of patterns with popcount k.
            let mut tested = 0;
            for bits in 0u16..(1 << BLOCK) {
                if bits.count_ones() as usize == k {
                    let off = encode_offset(bits, k);
                    assert!(off < u32::from(BINOM[BLOCK][k]), "offset in range");
                    assert_eq!(decode_offset(off, k), bits, "class {k} bits {bits:#b}");
                    tested += 1;
                    if tested > 200 {
                        break; // keep the test fast; coverage is already broad
                    }
                }
            }
            assert!(tested > 0);
        }
    }

    #[test]
    fn offsets_are_dense_ranks() {
        // For a small class, offsets must be exactly 0..C(15,k) with no gaps.
        let k = 2;
        let mut offsets: Vec<u32> = (0u16..(1 << BLOCK))
            .filter(|b| b.count_ones() == k)
            .map(|b| encode_offset(b, k as usize))
            .collect();
        offsets.sort_unstable();
        let expect: Vec<u32> = (0..u32::from(BINOM[BLOCK][k as usize])).collect();
        assert_eq!(offsets, expect);
    }

    #[test]
    fn access_matches_dense() {
        let dense = BitVec::from_ones(1234, (0..1234).filter(|i| i % 3 == 0 || i % 17 == 0));
        let rrr = RrrVec::from_bitvec(&dense);
        assert_eq!(rrr.len(), 1234);
        assert_eq!(rrr.count_ones(), dense.count_ones());
        for i in 0..1234 {
            assert_eq!(rrr.get(i), dense.get(i), "bit {i}");
        }
    }

    #[test]
    fn rank_matches_naive() {
        let dense = BitVec::from_ones(2000, (0..2000).filter(|i| i % 5 == 0));
        let rrr = RrrVec::from_bitvec(&dense);
        let mut acc = 0usize;
        for i in 0..2000 {
            assert_eq!(rrr.rank1(i), acc, "rank1({i})");
            if dense.get(i) {
                acc += 1;
            }
        }
        assert_eq!(rrr.rank1(2000), acc);
    }

    #[test]
    fn to_bitvec_roundtrip() {
        let dense = BitVec::from_ones(999, (0..999).filter(|i| (i * i) % 7 == 1));
        let rrr = RrrVec::from_bitvec(&dense);
        assert_eq!(rrr.to_bitvec(), dense);
    }

    #[test]
    fn sparse_vectors_compress() {
        // 1% fill: RRR should be far below the dense 12.5 KB.
        let dense = BitVec::from_ones(100_000, (0..100_000).step_by(100));
        let rrr = RrrVec::from_bitvec(&dense);
        assert!(
            rrr.size_bytes() < dense.size_bytes() * 6 / 10,
            "rrr {} vs dense {}",
            rrr.size_bytes(),
            dense.size_bytes()
        );
        assert_eq!(rrr.to_bitvec(), dense);
    }

    #[test]
    fn dense_vectors_also_roundtrip() {
        let dense = BitVec::ones(500);
        let rrr = RrrVec::from_bitvec(&dense);
        assert_eq!(rrr.count_ones(), 500);
        assert_eq!(rrr.to_bitvec(), dense);
    }

    #[test]
    fn empty_vector() {
        let rrr = RrrVec::from_bitvec(&BitVec::zeros(0));
        assert!(rrr.is_empty());
        assert_eq!(rrr.count_ones(), 0);
        assert_eq!(rrr.to_bitvec(), BitVec::zeros(0));
    }

    #[test]
    fn partial_final_block() {
        // len = 20 → one full block + 5-bit tail.
        let dense = BitVec::from_ones(20, [0, 14, 15, 19]);
        let rrr = RrrVec::from_bitvec(&dense);
        for i in 0..20 {
            assert_eq!(rrr.get(i), dense.get(i));
        }
        assert_eq!(rrr.rank1(20), 4);
    }

    #[test]
    fn superblock_sampling_interval_matches_constant() {
        // The module doc promises one sample every `SUPER` blocks; pin the
        // doc to the code so they cannot drift apart again.
        let len = BLOCK * (3 * SUPER) + 7; // 3 full superblocks + partial
        let dense = BitVec::from_ones(len, (0..len).step_by(3));
        let rrr = RrrVec::from_bitvec(&dense);
        assert_eq!(rrr.samples.len(), rrr.n_blocks.div_ceil(SUPER));
        assert_eq!(rrr.samples.len(), 4);
        // Each sample's rank is the dense rank at its block boundary — i.e.
        // the sample really sits at block `sb * SUPER`, not some other
        // interval that happens to produce the same count.
        for (sb, &(rank, _)) in rrr.samples.iter().enumerate() {
            let bit = sb * SUPER * BLOCK;
            assert_eq!(rank as usize, (0..bit).filter(|i| i % 3 == 0).count());
        }
    }

    #[test]
    fn vec_serialization_roundtrip() {
        for len in [0usize, 1, 14, 15, 16, 1000, 1234] {
            let dense = BitVec::from_ones(len, (0..len).filter(|i| i % 7 == 2));
            let rrr = RrrVec::from_bitvec(&dense);
            let bytes = rrr.to_bytes();
            assert!(bytes.len().is_multiple_of(8), "len {len}");
            let back = RrrVec::from_bytes(&bytes).unwrap();
            assert_eq!(back, rrr, "len {len}");
            assert_eq!(back.to_bitvec(), dense, "len {len}");
        }
    }

    #[test]
    fn vec_serialization_rejects_corruption() {
        let dense = BitVec::from_ones(500, (0..500).step_by(9));
        let bytes = RrrVec::from_bitvec(&dense).to_bytes();
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(RrrVec::from_bytes(&bad).is_err());
        // Truncations at every prefix length must error, never panic.
        for cut in 0..bytes.len() {
            assert!(RrrVec::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
        // Trailing garbage.
        let mut long = bytes.clone();
        long.extend_from_slice(&[0u8; 8]);
        assert!(RrrVec::from_bytes(&long).is_err());
        // A corrupted offset-stream length desynchronizes the block walk.
        let mut lied = bytes.clone();
        lied[12] ^= 0x01;
        assert!(RrrVec::from_bytes(&lied).is_err());
    }

    fn dense_rows(m: usize, buckets: usize, f: impl Fn(usize, usize) -> bool) -> Vec<u64> {
        let rw = buckets.div_ceil(64);
        let mut words = vec![0u64; m * rw];
        for p in 0..m {
            for b in 0..buckets {
                if f(p, b) {
                    words[p * rw + b / 64] |= 1u64 << (b % 64);
                }
            }
        }
        words
    }

    #[test]
    fn matrix_rows_roundtrip_bit_identical() {
        for buckets in [1usize, 15, 16, 64, 65, 70, 128, 130] {
            let m = 97;
            let words = dense_rows(m, buckets, |p, b| (p * 31 + b * 7) % 13 == 0);
            let rrr = RrrMatrix::from_words(&words, m, buckets);
            assert_eq!(
                rrr.count_ones(),
                words.iter().map(|w| w.count_ones() as usize).sum()
            );
            let rw = buckets.div_ceil(64);
            let mut row = vec![0u64; rw];
            for p in 0..m {
                rrr.decode_row_into(p, &mut row);
                assert_eq!(&row, &words[p * rw..(p + 1) * rw], "B={buckets} row {p}");
                for b in 0..buckets {
                    assert_eq!(
                        rrr.get(p, b),
                        (words[p * rw + b / 64] >> (b % 64)) & 1 == 1,
                        "B={buckets} bit ({p},{b})"
                    );
                }
            }
        }
    }

    #[test]
    fn matrix_serialization_roundtrip_and_peek() {
        let (m, buckets) = (64, 70);
        let words = dense_rows(m, buckets, |p, b| (p + b) % 11 == 3);
        let rrr = RrrMatrix::from_words(&words, m, buckets);
        let bytes = {
            // Encode at a nonzero word-aligned origin, like a catalog does.
            let mut out = vec![0u8; 16];
            rrr.encode_into(&mut out);
            out.split_off(16)
        };
        assert!(bytes.len().is_multiple_of(8));
        assert_eq!(RrrMatrix::peek_encoded_len(&bytes).unwrap(), bytes.len());
        // The peek needs only the header prefix.
        assert_eq!(
            RrrMatrix::peek_encoded_len(&bytes[..36]).unwrap(),
            bytes.len()
        );
        let mut slice = bytes.as_slice();
        let back = RrrMatrix::decode_from(&mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(back, rrr);
    }

    #[test]
    fn matrix_serialization_rejects_corruption() {
        let words = dense_rows(32, 40, |p, b| (p ^ b) % 5 == 0);
        let rrr = RrrMatrix::from_words(&words, 32, 40);
        let mut bytes = Vec::new();
        rrr.encode_into(&mut bytes);
        for cut in 0..bytes.len() {
            assert!(
                RrrMatrix::decode_from(&mut &bytes[..cut]).is_err(),
                "cut {cut}"
            );
        }
        let mut bad = bytes.clone();
        bad[2] = b'!';
        assert!(RrrMatrix::decode_from(&mut bad.as_slice()).is_err());
        // Corrupting the stream-length field desynchronizes the walk.
        let mut short_stream = bytes.clone();
        short_stream[20] ^= 0x01;
        assert!(RrrMatrix::decode_from(&mut short_stream.as_slice()).is_err());
        // An empty-matrix claim (zero rows) is rejected outright.
        let mut zero = bytes.clone();
        zero[4..12].fill(0);
        assert!(RrrMatrix::decode_from(&mut zero.as_slice()).is_err());
    }
}
