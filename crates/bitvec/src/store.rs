//! Word storage backends: owned `Vec<u64>` vs zero-copy views.
//!
//! The paper's workflow serializes indexes to disk after construction and
//! re-opens them repeatedly (fold-over keeps *several* index versions on
//! disk; the 170TB build produces a 1.8TB artifact). Re-opening must not
//! re-copy terabytes: [`WordStore::View`] lets a [`crate::BitVec`] or a BFU
//! matrix borrow its word payload straight out of a caller-provided
//! `Arc<[u8]>` — typically a memory-mapped index file — with **zero word
//! copies**. The serialization formats 8-byte-align their word payloads so
//! the borrowed bytes can be reinterpreted as `&[u64]` in place.
//!
//! Views are copy-on-write: any mutating operation promotes the storage to
//! [`WordStore::Owned`] first (one copy, once), so read-mostly workloads pay
//! nothing and the mutable API keeps working unchanged.

use crate::error::DecodeError;
use std::sync::Arc;

/// A borrowed, 8-byte-aligned window of `u64` words inside a shared byte
/// buffer (an mmap'd index file, a loaded `Vec<u8>`, …).
#[derive(Clone)]
pub struct WordView {
    buf: Arc<[u8]>,
    /// Byte offset of the first word inside `buf`.
    start: usize,
    /// Number of `u64` words in the window.
    words: usize,
}

impl WordView {
    /// Create a view of `words` little-endian `u64`s starting `start` bytes
    /// into `buf`.
    ///
    /// # Errors
    /// [`DecodeError`] when the window overruns the buffer, the word payload
    /// is not 8-byte-aligned in memory, or the target is big-endian (the
    /// on-disk words are little-endian; reinterpreting them in place is only
    /// sound where native order matches).
    pub fn new(buf: Arc<[u8]>, start: usize, words: usize) -> Result<Self, DecodeError> {
        if cfg!(target_endian = "big") {
            return Err(DecodeError::new(
                "zero-copy word views require a little-endian target",
            ));
        }
        let bytes = words
            .checked_mul(8)
            .ok_or_else(|| DecodeError::new("word view size overflow"))?;
        let end = start
            .checked_add(bytes)
            .ok_or_else(|| DecodeError::new("word view size overflow"))?;
        if end > buf.len() {
            return Err(DecodeError::new("word view overruns its buffer"));
        }
        if !(buf.as_ptr() as usize + start).is_multiple_of(8) {
            return Err(DecodeError::new(
                "word view payload is not 8-byte-aligned; re-serialize or load via the copying path",
            ));
        }
        Ok(Self { buf, start, words })
    }

    /// The words of the window, borrowed from the backing buffer.
    #[inline]
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        cast_words(&self.buf[self.start..self.start + self.words * 8])
    }
}

impl std::fmt::Debug for WordView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WordView")
            .field("start", &self.start)
            .field("words", &self.words)
            .field("buf_len", &self.buf.len())
            .finish()
    }
}

/// Reinterpret an 8-byte-aligned little-endian byte slice as `&[u64]`.
///
/// The *only* unsafe code in the workspace. Soundness:
/// * the pointer is 8-byte-aligned (checked by [`WordView::new`], re-asserted
///   here);
/// * the length is an exact multiple of 8 (sliced by the caller);
/// * every bit pattern is a valid `u64`, so no validity invariant can break;
/// * the returned lifetime is tied to the input borrow, so the `Arc` keeps
///   the bytes alive for as long as the words are in use;
/// * `u64` reads require native byte order to agree with the on-disk
///   little-endian words — enforced at view construction (LE targets only).
#[allow(unsafe_code)]
fn cast_words(bytes: &[u8]) -> &[u64] {
    debug_assert_eq!(bytes.len() % 8, 0);
    debug_assert_eq!(bytes.as_ptr() as usize % 8, 0);
    // SAFETY: alignment and length are checked above (and at WordView
    // construction); u64 has no invalid bit patterns; lifetime is inherited
    // from `bytes`.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<u64>(), bytes.len() / 8) }
}

/// Append the word-payload alignment padding: one pad-length byte plus up
/// to 7 zero bytes, sized so the next byte written to `out` lands on an
/// 8-byte boundary *relative to the start of `out`*. Every serializer in
/// the workspace shares this (and [`skip_word_padding`]) so the padding
/// rules cannot drift between formats.
pub fn write_word_padding(out: &mut Vec<u8>) {
    let pad = (8 - (out.len() + 1) % 8) % 8;
    out.push(pad as u8);
    out.extend(std::iter::repeat_n(0u8, pad));
}

/// Consume and validate padding written by [`write_word_padding`],
/// advancing `buf` past it.
///
/// # Errors
/// [`DecodeError`] on truncation, an out-of-range pad length, or non-zero
/// pad bytes.
pub fn skip_word_padding(buf: &mut &[u8]) -> Result<(), DecodeError> {
    let (&pad, rest) = buf
        .split_first()
        .ok_or_else(|| DecodeError::new("word padding truncated"))?;
    let pad = pad as usize;
    if pad >= 8 {
        return Err(DecodeError::new("word padding length out of range"));
    }
    if rest.len() < pad {
        return Err(DecodeError::new("word padding truncated"));
    }
    if rest[..pad].iter().any(|&b| b != 0) {
        return Err(DecodeError::new("word padding bytes must be zero"));
    }
    *buf = &rest[pad..];
    Ok(())
}

/// Storage behind a dense bit structure: owned words, or a zero-copy view
/// into a shared byte buffer.
#[derive(Clone, Debug)]
pub enum WordStore {
    /// Heap-owned words (the default; produced by construction and by the
    /// copying decode paths).
    Owned(Vec<u64>),
    /// Borrowed words inside an `Arc<[u8]>` (produced by the `open_view`
    /// load paths). Promoted to [`WordStore::Owned`] on first mutation.
    View(WordView),
}

impl WordStore {
    /// The stored words, whatever the backend.
    #[inline]
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        match self {
            Self::Owned(v) => v,
            Self::View(v) => v.as_words(),
        }
    }

    /// Number of stored words.
    #[inline]
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Self::Owned(v) => v.len(),
            Self::View(v) => v.words,
        }
    }

    /// True when no words are stored.
    #[inline]
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True for the zero-copy backend.
    #[inline]
    #[must_use]
    pub fn is_view(&self) -> bool {
        matches!(self, Self::View(_))
    }

    /// Mutable word access; a view is promoted to owned storage first
    /// (copy-on-write — this is the one place a view's payload is copied).
    #[inline]
    pub fn to_mut(&mut self) -> &mut Vec<u64> {
        if let Self::View(v) = self {
            *self = Self::Owned(v.as_words().to_vec());
        }
        match self {
            Self::Owned(v) => v,
            Self::View(_) => unreachable!("view was just promoted"),
        }
    }
}

impl From<Vec<u64>> for WordStore {
    fn from(words: Vec<u64>) -> Self {
        Self::Owned(words)
    }
}

impl PartialEq for WordStore {
    /// Backend-agnostic equality: two stores are equal when they hold the
    /// same words, regardless of who owns them.
    fn eq(&self, other: &Self) -> bool {
        self.as_words() == other.as_words()
    }
}

impl Eq for WordStore {}

#[cfg(test)]
mod tests {
    use super::*;

    fn arc_of(words: &[u64]) -> Arc<[u8]> {
        let mut bytes = Vec::new();
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        bytes.into()
    }

    #[test]
    fn view_reads_back_words() {
        let words = [1u64, u64::MAX, 0xDEAD_BEEF];
        let buf = arc_of(&words);
        // Arc<[u8]> payloads start at an 8-aligned address in practice; the
        // constructor would reject the rare case where they do not.
        if let Ok(v) = WordView::new(buf, 0, 3) {
            assert_eq!(v.as_words(), &words);
        }
    }

    #[test]
    fn view_rejects_overrun() {
        let buf = arc_of(&[1, 2]);
        assert!(WordView::new(buf, 8, 2).is_err());
    }

    #[test]
    fn view_rejects_misalignment() {
        let buf = arc_of(&[1, 2, 3]);
        if (buf.as_ptr() as usize).is_multiple_of(8) {
            assert!(WordView::new(buf, 4, 1).is_err());
        }
    }

    #[test]
    fn store_copy_on_write_promotes() {
        let words = [7u64, 8, 9];
        let buf = arc_of(&words);
        let Ok(view) = WordView::new(buf, 0, 3) else {
            return; // misaligned Arc payload on this platform; nothing to test
        };
        let mut store = WordStore::View(view);
        assert!(store.is_view());
        assert_eq!(store.as_words(), &words);
        store.to_mut()[1] = 100;
        assert!(!store.is_view());
        assert_eq!(store.as_words(), &[7, 100, 9]);
    }

    #[test]
    fn padding_roundtrips_at_every_offset() {
        for lead in 0..9usize {
            let mut out = vec![0xAAu8; lead];
            write_word_padding(&mut out);
            assert!(out.len().is_multiple_of(8), "lead {lead}");
            let mut slice = &out[lead..];
            skip_word_padding(&mut slice).unwrap();
            assert!(slice.is_empty(), "lead {lead}");
        }
    }

    #[test]
    fn padding_rejects_corruption() {
        let mut empty: &[u8] = &[];
        assert!(skip_word_padding(&mut empty).is_err());
        let mut bad_len: &[u8] = &[9];
        assert!(skip_word_padding(&mut bad_len).is_err());
        let mut short: &[u8] = &[3, 0];
        assert!(skip_word_padding(&mut short).is_err());
        let mut dirty: &[u8] = &[2, 0, 1];
        assert!(skip_word_padding(&mut dirty).is_err());
    }

    #[test]
    fn store_equality_crosses_backends() {
        let words = vec![3u64, 4];
        let buf = arc_of(&words);
        let owned = WordStore::Owned(words.clone());
        if let Ok(view) = WordView::new(buf, 0, 2) {
            assert_eq!(owned, WordStore::View(view));
        }
        assert_ne!(owned, WordStore::Owned(vec![3, 5]));
    }
}
