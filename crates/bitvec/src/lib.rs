//! Bit-vector substrate for the RAMBO reproduction.
//!
//! Three structures, each motivated by a specific need of the paper:
//!
//! * [`BitVec`] — the dense, word-addressed bit array underlying every Bloom
//!   filter and every document bitmap. The paper's §5.1 "Bitmap arrays"
//!   discussion (union = word-OR, intersection = word-AND, efficient once
//!   >15% of bits are set) is implemented here as whole-word operations.
//! * [`RankBitVec`] — a rank/select index over a dense vector (512-bit
//!   superblocks + word scans). Used wherever we need "how many set bits
//!   before position i" style queries, e.g. converting result bitmaps to
//!   ranked document lists.
//! * [`RrrVec`] — an RRR-style compressed bitvector (Raman–Raman–Rao \[25\]),
//!   cited by the paper as the compression used by HowDeSBT and SSBT for
//!   their tree nodes (Table 3 caption). Blocks of 15 bits are stored as a
//!   (class, offset) pair under enumerative coding; supports `access` and
//!   `rank1` without decompression. Its row-major sibling [`RrrMatrix`]
//!   stores an `m × B` matrix as one RRR stream per row — the compressed
//!   storage backend for cold BFU tiers.
//! * [`PagedWords`] — file-backed word storage faulted in row-aligned
//!   blocks through the sharded, byte-budgeted block cache of a
//!   [`PagedFile`], so a many-GB catalog opens by reading metadata only and
//!   queries touch just the rows they probe (per-tier traffic in
//!   [`BlockCacheCounters`]).
//!
//! All structures serialize to a compact binary form (magic + version header)
//! and deserialize with validation, since the paper's fold-over workflow
//! writes indexes to disk at multiple sizes. Dense word payloads are
//! 8-byte-aligned on disk so indexes can also be *opened in place*: the
//! [`WordStore`] storage abstraction backs a [`BitVec`] either with owned
//! words or with a zero-copy view into a caller-provided `Arc<[u8]>`
//! (typically a memory-mapped file), and the word-loop hot paths run through
//! the runtime-dispatched kernels in [`kernel`] — a portable unrolled
//! [`Backend::Scalar`] everywhere, 256-bit [`Backend::Avx2`] variants where
//! `is_x86_feature_detected!` confirms support (override with the
//! `RAMBO_KERNEL` environment variable or pin a [`Kernel`] explicitly).
//!
//! Unsafe policy: the crate is `deny(unsafe_code)` with scoped, audited
//! allows in exactly two places — the aligned `&[u8]` → `&[u64]`
//! reinterpretation behind the zero-copy view (see `store::cast_words`),
//! and the guarded `target_feature` dispatch of the AVX2 kernels (see
//! [`kernel`]'s module docs and DESIGN.md for the safety arguments).

#![deny(unsafe_code)]
#![warn(missing_docs)]

mod dense;
mod error;
pub mod kernel;
mod paged;
mod rank;
mod rrr;
mod store;

pub use dense::BitVec;
pub use error::DecodeError;
pub use kernel::{Backend, Kernel};
pub use paged::{BlockCacheCounters, BlockCacheSnapshot, PageGuard, PagedFile, PagedWords};
pub use rank::RankBitVec;
pub use rrr::{RrrMatrix, RrrVec};
pub use store::{skip_word_padding, write_word_padding, WordStore, WordView};
