//! Rank/select acceleration over a dense [`BitVec`].
//!
//! A single directory level: one cumulative popcount per 8-word (512-bit)
//! superblock, with word-level popcount scans inside a superblock. That is
//! ~1.6% space overhead and O(1)-ish rank — plenty for converting query
//! result bitmaps ("which of the K documents matched") into ranked document
//! lists, and for the RRR sampling layer.

use crate::dense::BitVec;

const WORDS_PER_BLOCK: usize = 8; // 512 bits

/// A dense bitvector with a rank directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RankBitVec {
    bits: BitVec,
    /// `block_ranks[i]` = number of ones strictly before word `i*8`.
    block_ranks: Vec<u64>,
    total_ones: usize,
}

impl RankBitVec {
    /// Index an existing bitvector (takes ownership; the bits are immutable
    /// afterwards — mutating would invalidate the directory).
    #[must_use]
    pub fn new(bits: BitVec) -> Self {
        let words = bits.words();
        let n_blocks = words.len().div_ceil(WORDS_PER_BLOCK);
        let mut block_ranks = Vec::with_capacity(n_blocks);
        let mut acc = 0u64;
        for (i, w) in words.iter().enumerate() {
            if i % WORDS_PER_BLOCK == 0 {
                block_ranks.push(acc);
            }
            acc += u64::from(w.count_ones());
        }
        Self {
            bits,
            block_ranks,
            total_ones: acc as usize,
        }
    }

    /// The wrapped bits.
    #[must_use]
    pub fn bits(&self) -> &BitVec {
        &self.bits
    }

    /// Bit length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// Total number of set bits.
    #[must_use]
    pub fn count_ones(&self) -> usize {
        self.total_ones
    }

    /// Read bit `i`.
    #[must_use]
    pub fn get(&self, i: usize) -> bool {
        self.bits.get(i)
    }

    /// Number of set bits strictly before position `i` (`rank1(len)` equals
    /// [`RankBitVec::count_ones`]).
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    pub fn rank1(&self, i: usize) -> usize {
        assert!(i <= self.bits.len(), "rank index out of range");
        let words = self.bits.words();
        let word = i / 64;
        let block = word / WORDS_PER_BLOCK;
        let mut r = if block < self.block_ranks.len() {
            self.block_ranks[block] as usize
        } else {
            return self.total_ones;
        };
        for w in &words[block * WORDS_PER_BLOCK..word] {
            r += w.count_ones() as usize;
        }
        let tail = i % 64;
        if tail != 0 && word < words.len() {
            r += (words[word] & ((1u64 << tail) - 1)).count_ones() as usize;
        }
        r
    }

    /// Number of zero bits strictly before position `i`.
    ///
    /// # Panics
    /// Panics if `i > len()`.
    #[must_use]
    pub fn rank0(&self, i: usize) -> usize {
        i - self.rank1(i)
    }

    /// Position of the `k`-th set bit (0-based): `select1(0)` is the first
    /// one. Returns `None` when fewer than `k+1` bits are set.
    #[must_use]
    pub fn select1(&self, k: usize) -> Option<usize> {
        if k >= self.total_ones {
            return None;
        }
        // Binary search the superblock directory, then scan words.
        let target = k as u64;
        let mut lo = 0usize;
        let mut hi = self.block_ranks.len();
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.block_ranks[mid] <= target {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let mut remaining = k - self.block_ranks[lo] as usize;
        let words = self.bits.words();
        let start = lo * WORDS_PER_BLOCK;
        for (off, &w) in words[start..].iter().enumerate() {
            let ones = w.count_ones() as usize;
            if remaining < ones {
                return Some((start + off) * 64 + select_in_word(w, remaining));
            }
            remaining -= ones;
        }
        None
    }
}

/// Index of the `k`-th (0-based) set bit inside one word.
fn select_in_word(mut w: u64, mut k: usize) -> usize {
    debug_assert!(k < w.count_ones() as usize);
    loop {
        let tz = w.trailing_zeros() as usize;
        if k == 0 {
            return tz;
        }
        w &= w - 1;
        k -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_rank(bits: &BitVec, i: usize) -> usize {
        (0..i).filter(|&j| bits.get(j)).count()
    }

    #[test]
    fn rank_matches_naive_on_pattern() {
        let bits = BitVec::from_ones(1500, (0..1500).filter(|i| i % 7 == 0 || i % 11 == 0));
        let rb = RankBitVec::new(bits.clone());
        for i in (0..=1500).step_by(31) {
            assert_eq!(rb.rank1(i), naive_rank(&bits, i), "rank1({i})");
            assert_eq!(rb.rank0(i), i - naive_rank(&bits, i), "rank0({i})");
        }
        assert_eq!(rb.rank1(1500), rb.count_ones());
    }

    #[test]
    fn select_inverts_rank() {
        let bits = BitVec::from_ones(2000, (0..2000).filter(|i| i % 13 == 0));
        let rb = RankBitVec::new(bits);
        for k in 0..rb.count_ones() {
            let pos = rb.select1(k).unwrap();
            assert!(rb.get(pos));
            assert_eq!(rb.rank1(pos), k, "rank1(select1({k}))");
        }
        assert_eq!(rb.select1(rb.count_ones()), None);
    }

    #[test]
    fn empty_and_all_zero() {
        let rb = RankBitVec::new(BitVec::zeros(0));
        assert_eq!(rb.rank1(0), 0);
        assert_eq!(rb.select1(0), None);

        let rb = RankBitVec::new(BitVec::zeros(300));
        assert_eq!(rb.rank1(300), 0);
        assert_eq!(rb.select1(0), None);
    }

    #[test]
    fn all_ones_rank_is_identity() {
        let rb = RankBitVec::new(BitVec::ones(777));
        for i in (0..=777).step_by(97) {
            assert_eq!(rb.rank1(i), i);
        }
        for k in (0..777).step_by(55) {
            assert_eq!(rb.select1(k), Some(k));
        }
    }

    #[test]
    fn select_in_word_all_positions() {
        let w: u64 = 0b1010_1101;
        assert_eq!(select_in_word(w, 0), 0);
        assert_eq!(select_in_word(w, 1), 2);
        assert_eq!(select_in_word(w, 2), 3);
        assert_eq!(select_in_word(w, 3), 5);
        assert_eq!(select_in_word(w, 4), 7);
    }
}
