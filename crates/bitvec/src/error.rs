//! Decoding errors for the binary serialization formats in this crate.

use std::fmt;

/// Error returned when deserializing a bit structure from bytes fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    message: String,
}

impl DecodeError {
    /// Create an error with a human-readable cause.
    #[must_use]
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The cause description.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error: {}", self.message)
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = DecodeError::new("bad magic");
        assert!(e.to_string().contains("bad magic"));
        assert_eq!(e.message(), "bad magic");
    }
}
