//! Tokenization matching the paper's §5.4 preprocessing: lowercase,
//! alphanumeric-only, stop words removed, word unigrams.

/// A compact English stop-word list (the usual IR function words).
pub const STOP_WORDS: &[&str] = &[
    "a", "about", "above", "after", "again", "all", "also", "am", "an", "and", "any", "are", "as",
    "at", "be", "because", "been", "before", "being", "below", "between", "both", "but", "by",
    "can", "could", "did", "do", "does", "doing", "down", "during", "each", "few", "for", "from",
    "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his", "how",
    "i", "if", "in", "into", "is", "it", "its", "just", "me", "more", "most", "my", "no", "nor",
    "not", "now", "of", "off", "on", "once", "only", "or", "other", "our", "out", "over", "own",
    "s", "same", "she", "should", "so", "some", "such", "t", "than", "that", "the", "their",
    "them", "then", "there", "these", "they", "this", "those", "through", "to", "too", "under",
    "until", "up", "very", "was", "we", "were", "what", "when", "where", "which", "while", "who",
    "whom", "why", "will", "with", "you", "your",
];

/// True if `word` (already lowercase) is a stop word.
#[must_use]
pub fn is_stop_word(word: &str) -> bool {
    STOP_WORDS.binary_search(&word).is_ok()
}

/// Tokenize text the way §5.4 describes: split on non-alphanumeric bytes,
/// lowercase, drop stop words and empty tokens.
///
/// ```
/// use rambo_text::tokenize;
/// let toks = tokenize("The quick-brown FOX, and the dog!");
/// assert_eq!(toks, vec!["quick", "brown", "fox", "dog"]);
/// ```
#[must_use]
pub fn tokenize(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_ascii_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(str::to_ascii_lowercase)
        .filter(|t| !is_stop_word(t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stop_word_list_is_sorted_for_binary_search() {
        let mut sorted = STOP_WORDS.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, STOP_WORDS, "STOP_WORDS must stay sorted");
    }

    #[test]
    fn recognizes_stop_words() {
        assert!(is_stop_word("the"));
        assert!(is_stop_word("and"));
        assert!(!is_stop_word("genome"));
    }

    #[test]
    fn tokenize_strips_punctuation_and_case() {
        assert_eq!(
            tokenize("Hello, WORLD! hello?"),
            vec!["hello", "world", "hello"]
        );
    }

    #[test]
    fn tokenize_drops_stop_words() {
        assert_eq!(tokenize("the cat and the hat"), vec!["cat", "hat"]);
    }

    #[test]
    fn tokenize_keeps_numbers() {
        assert_eq!(
            tokenize("covid 19 outbreak"),
            vec!["covid", "19", "outbreak"]
        );
    }

    #[test]
    fn tokenize_empty_and_all_stop() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("the of and").is_empty());
        assert!(tokenize("!!! ---").is_empty());
    }
}
