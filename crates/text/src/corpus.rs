//! Zipf-distributed synthetic corpora calibrated to the paper's §5.4
//! datasets.
//!
//! Natural-language term frequencies follow Zipf's law; what the index
//! structures care about is (a) the number of *distinct* terms per document
//! and (b) the document-frequency distribution of terms (how many documents
//! a term appears in — the multiplicity `V` of the analysis). Sampling each
//! document's terms i.i.d. from a Zipf(s) vocabulary reproduces both: head
//! terms land in nearly every document (high V), tail terms are unique to
//! one (V = 1).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a synthetic corpus.
#[derive(Debug, Clone, Copy)]
pub struct CorpusParams {
    /// Number of documents (`K`).
    pub docs: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Zipf exponent (1.0 ≈ natural text).
    pub exponent: f64,
    /// Mean distinct terms per document (paper: ~650 Wiki, ~450 ClueWeb).
    pub mean_terms: usize,
    /// RNG seed.
    pub seed: u64,
}

impl CorpusParams {
    /// Parameters mimicking the paper's Wiki-dump sample (§5.4), scaled by
    /// `scale` (1.0 = the paper's 17,618 documents).
    #[must_use]
    pub fn wiki(scale: f64, seed: u64) -> Self {
        Self {
            docs: ((17_618.0 * scale) as usize).max(1),
            vocab: 200_000,
            exponent: 1.05,
            mean_terms: 650,
            seed,
        }
    }

    /// Parameters mimicking the ClueWeb09 Category-B sample (§5.4).
    #[must_use]
    pub fn clueweb(scale: f64, seed: u64) -> Self {
        Self {
            docs: ((50_000.0 * scale) as usize).max(1),
            vocab: 400_000,
            exponent: 1.05,
            mean_terms: 450,
            seed,
        }
    }
}

/// One synthetic document: a name and its distinct term set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// Stable document name (used as the RAMBO partition identity).
    pub name: String,
    /// Distinct term ids, sorted ascending. Term id `t` corresponds to the
    /// vocabulary word `word-t`; ids are what the indexes consume.
    pub terms: Vec<u64>,
}

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct ZipfCorpus {
    /// The documents.
    pub docs: Vec<Document>,
}

impl ZipfCorpus {
    /// Generate a corpus. Terms per document are `Uniform(mean/2, 3·mean/2)`
    /// *sampled* occurrences, deduplicated, so distinct counts land slightly
    /// below the mean occurrence count, as in real text.
    ///
    /// # Panics
    /// Panics if any dimension of `params` is zero.
    #[must_use]
    pub fn generate(params: &CorpusParams) -> Self {
        assert!(params.docs > 0 && params.vocab > 0 && params.mean_terms > 0);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let sampler = ZipfSampler::new(params.vocab, params.exponent);
        let lo = (params.mean_terms / 2).max(1);
        let hi = params.mean_terms + params.mean_terms / 2;
        let docs = (0..params.docs)
            .map(|d| {
                let occurrences = rng.gen_range(lo..=hi);
                let mut terms: Vec<u64> = (0..occurrences)
                    .map(|_| sampler.sample(&mut rng) as u64)
                    .collect();
                terms.sort_unstable();
                terms.dedup();
                Document {
                    name: format!("doc-{d:06}"),
                    terms,
                }
            })
            .collect();
        Self { docs }
    }

    /// Total distinct (document, term) pairs — the `Σ|S|` of the size
    /// analysis.
    #[must_use]
    pub fn total_terms(&self) -> usize {
        self.docs.iter().map(|d| d.terms.len()).sum()
    }

    /// Document frequency of a term (its multiplicity `V`).
    #[must_use]
    pub fn doc_frequency(&self, term: u64) -> usize {
        self.docs
            .iter()
            .filter(|d| d.terms.binary_search(&term).is_ok())
            .count()
    }
}

/// Inverse-CDF Zipf sampler over ranks `0..n` with `P(r) ∝ (r+1)^{−s}`.
struct ZipfSampler {
    /// Cumulative probabilities, length `n`.
    cdf: Vec<f64>,
}

impl ZipfSampler {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += ((r + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_params() -> CorpusParams {
        CorpusParams {
            docs: 200,
            vocab: 5_000,
            exponent: 1.05,
            mean_terms: 100,
            seed: 42,
        }
    }

    #[test]
    fn corpus_shape_matches_params() {
        let c = ZipfCorpus::generate(&small_params());
        assert_eq!(c.docs.len(), 200);
        let mean = c.total_terms() as f64 / 200.0;
        assert!(
            (40.0..160.0).contains(&mean),
            "mean distinct terms {mean} too far from requested 100"
        );
        for d in &c.docs {
            assert!(
                d.terms.windows(2).all(|w| w[0] < w[1]),
                "terms sorted+unique"
            );
            assert!(d.terms.iter().all(|&t| t < 5_000));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ZipfCorpus::generate(&small_params());
        let b = ZipfCorpus::generate(&small_params());
        assert_eq!(a.docs, b.docs);
        let mut p2 = small_params();
        p2.seed = 43;
        let c = ZipfCorpus::generate(&p2);
        assert_ne!(a.docs, c.docs);
    }

    #[test]
    fn head_terms_have_high_document_frequency() {
        let c = ZipfCorpus::generate(&small_params());
        // Rank-0 term should appear in most documents; a deep-tail term in
        // almost none.
        let head_df = c.doc_frequency(0);
        let tail_df = c.doc_frequency(4_999);
        assert!(head_df > 150, "head df {head_df}");
        assert!(tail_df < 10, "tail df {tail_df}");
    }

    #[test]
    fn zipf_sampler_is_monotone_decreasing_in_rank() {
        let sampler = ZipfSampler::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut hist = vec![0u32; 1000];
        for _ in 0..100_000 {
            hist[sampler.sample(&mut rng)] += 1;
        }
        // Aggregate over decades to smooth noise.
        let head: u32 = hist[..10].iter().sum();
        let mid: u32 = hist[100..110].iter().sum();
        let tail: u32 = hist[900..910].iter().sum();
        assert!(
            head > mid && mid > tail,
            "head {head}, mid {mid}, tail {tail}"
        );
    }

    #[test]
    fn paper_presets_have_documented_shapes() {
        let w = CorpusParams::wiki(0.01, 1);
        assert_eq!(w.docs, 176);
        assert_eq!(w.mean_terms, 650);
        let c = CorpusParams::clueweb(0.01, 1);
        assert_eq!(c.docs, 500);
        assert_eq!(c.mean_terms, 450);
    }
}
