//! Document-indexing substrate for the paper's §5.4 experiments.
//!
//! §5.4 extends RAMBO from k-mers to web documents: "each document is
//! represented as a set of English words", preprocessed by "removing stop
//! words, keeping only alpha-numeric, and tokenizing as word unigrams". Two
//! corpora are used: a Wiki-dump sample (17,618 docs, ~650 terms/doc) and
//! TREC ClueWeb09 Category B (50K docs, ~450 terms/doc).
//!
//! This crate provides the same preprocessing ([`tokenize`]) and a
//! Zipf-distributed synthetic corpus generator ([`ZipfCorpus`]) calibrated to
//! those statistics, standing in for the datasets themselves (which are
//! licensed/unavailable — see DESIGN.md "Substitutions").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod token;

pub use corpus::{CorpusParams, Document, ZipfCorpus};
pub use token::{is_stop_word, tokenize, STOP_WORDS};
