//! The paper's false-positive measurement methodology (§5.2, Figure 4).
//!
//! "We calculated the false positive rate by creating a test set of 1000
//! randomly generated 30 length k-mer terms … assigned to V files
//! (distributed exponentially (1/α)exp(−x/α) with α = 100) randomly."
//!
//! Planted terms are drawn from a reserved id range disjoint from every
//! archive term (the paper uses length-30 strings for the same reason — no
//! collision with the 31-mers already indexed), inserted into the chosen
//! documents, and then queried; anything returned beyond the recorded truth
//! is a false positive.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Planted query set with ground truth.
#[derive(Debug, Clone)]
pub struct PlantedQueries {
    /// `(term, sorted target doc ids)` — each term was inserted into exactly
    /// these documents.
    pub queries: Vec<(u64, Vec<u32>)>,
}

impl PlantedQueries {
    /// Generate `n` planted terms over `k_docs` documents with multiplicity
    /// `V ~ 1 + Exp(α)` (clamped to `k_docs`); the paper's α is 100.
    ///
    /// Terms are drawn from the reserved range with bit 62 set, which no
    /// archive generator and no 2-bit-packed 31-mer (bits 0..61) produces.
    ///
    /// # Panics
    /// Panics if `n == 0`, `k_docs == 0`, or `alpha <= 0`.
    #[must_use]
    pub fn generate(n: usize, k_docs: usize, alpha: f64, seed: u64) -> Self {
        assert!(n > 0 && k_docs > 0);
        assert!(alpha > 0.0);
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..n)
            .map(|i| {
                let term = (1u64 << 62) | (i as u64);
                // Exponential via inverse CDF; V ≥ 1 so every planted term
                // exists somewhere (matching the paper's setup).
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                let v = (1.0 + (-u.ln()) * alpha).round() as usize;
                let v = v.clamp(1, k_docs);
                // Sample v distinct docs (Floyd's algorithm).
                let mut chosen = std::collections::BTreeSet::new();
                for j in (k_docs - v)..k_docs {
                    let t = rng.gen_range(0..=j);
                    let t32 = t as u32;
                    if !chosen.insert(t32) {
                        chosen.insert(j as u32);
                    }
                }
                (term, chosen.into_iter().collect())
            })
            .collect();
        Self { queries }
    }

    /// Fixed-multiplicity variant for Figure 4's per-V curves: every term is
    /// planted in exactly `v` documents. Term ids are salted with `v` so
    /// several per-V query sets can coexist in one archive without
    /// colliding.
    ///
    /// # Panics
    /// Panics if `v == 0` or `v > k_docs`.
    #[must_use]
    pub fn generate_fixed_v(n: usize, k_docs: usize, v: usize, seed: u64) -> Self {
        assert!(v >= 1 && v <= k_docs);
        let mut rng = StdRng::seed_from_u64(seed);
        let queries = (0..n)
            .map(|i| {
                let term = (1u64 << 62) | ((v as u64) << 32) | (i as u64);
                let mut chosen = std::collections::BTreeSet::new();
                while chosen.len() < v {
                    chosen.insert(rng.gen_range(0..k_docs as u32));
                }
                (term, chosen.into_iter().collect())
            })
            .collect();
        Self { queries }
    }

    /// Splice the planted terms into a document batch (before building batch
    /// indexes). Documents keep sorted, distinct term lists.
    ///
    /// # Panics
    /// Panics if a target doc id exceeds the batch.
    pub fn plant_into(&self, docs: &mut [(String, Vec<u64>)]) {
        for (term, targets) in &self.queries {
            for &d in targets {
                docs[d as usize].1.push(*term);
            }
        }
        for (_, terms) in docs.iter_mut() {
            terms.sort_unstable();
            terms.dedup();
        }
    }

    /// Number of planted terms.
    #[must_use]
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Measure an index's false-positive behaviour against the recorded
    /// truth. `query` maps a term to the index's answer (ascending ids).
    ///
    /// # Panics
    /// Panics — loudly — if the index violates the zero-false-negative
    /// contract, since every downstream number would be meaningless.
    #[must_use]
    pub fn measure(&self, k_docs: usize, mut query: impl FnMut(u64) -> Vec<u32>) -> FprMeasurement {
        let mut false_positives = 0usize;
        let mut negatives = 0usize;
        let mut affected_queries = 0usize;
        for (term, truth) in &self.queries {
            let got = query(*term);
            for d in truth {
                assert!(
                    got.binary_search(d).is_ok(),
                    "index reported a false negative for planted term {term:#x}, doc {d}"
                );
            }
            let fp = got.len() - truth.len();
            false_positives += fp;
            negatives += k_docs - truth.len();
            if fp > 0 {
                affected_queries += 1;
            }
        }
        FprMeasurement {
            queries: self.queries.len(),
            false_positives,
            negatives,
            affected_queries,
        }
    }
}

/// Result of an FPR measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FprMeasurement {
    /// Number of planted queries evaluated.
    pub queries: usize,
    /// Total spurious (term, document) reports.
    pub false_positives: usize,
    /// Total true-negative opportunities (`Σ_q (K − V_q)`).
    pub negatives: usize,
    /// Queries with at least one false positive.
    pub affected_queries: usize,
}

impl FprMeasurement {
    /// Per-document false-positive rate (the `F_p` of Lemma 4.1, averaged
    /// over queries).
    #[must_use]
    pub fn per_doc_rate(&self) -> f64 {
        if self.negatives == 0 {
            0.0
        } else {
            self.false_positives as f64 / self.negatives as f64
        }
    }

    /// Fraction of queries returning any incorrect document (the δ of
    /// Lemma 4.2, empirically).
    #[must_use]
    pub fn any_fp_rate(&self) -> f64 {
        if self.queries == 0 {
            0.0
        } else {
            self.affected_queries as f64 / self.queries as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplicities_follow_exponential_shape() {
        let q = PlantedQueries::generate(2000, 10_000, 100.0, 1);
        let vs: Vec<usize> = q.queries.iter().map(|(_, t)| t.len()).collect();
        let mean = vs.iter().sum::<usize>() as f64 / vs.len() as f64;
        // E[V] = 1 + α = 101.
        assert!((80.0..130.0).contains(&mean), "mean multiplicity {mean}");
        assert!(vs.iter().all(|&v| v >= 1));
        // Heavy tail exists but is rare.
        let big = vs.iter().filter(|&&v| v > 300).count();
        assert!(big < vs.len() / 10);
    }

    #[test]
    fn fixed_v_is_exact() {
        let q = PlantedQueries::generate_fixed_v(100, 50, 7, 2);
        for (_, targets) in &q.queries {
            assert_eq!(targets.len(), 7);
            assert!(targets.windows(2).all(|w| w[0] < w[1]));
            assert!(targets.iter().all(|&d| d < 50));
        }
    }

    #[test]
    fn planted_terms_are_disjoint_from_archive_range() {
        let q = PlantedQueries::generate(100, 10, 5.0, 3);
        for (term, _) in &q.queries {
            assert!(term & (1 << 62) != 0, "planted terms live in bit-62 range");
        }
    }

    #[test]
    fn plant_into_updates_documents() {
        let mut docs: Vec<(String, Vec<u64>)> =
            (0..5).map(|d| (format!("d{d}"), vec![d as u64])).collect();
        let q = PlantedQueries::generate_fixed_v(10, 5, 2, 4);
        q.plant_into(&mut docs);
        for (term, targets) in &q.queries {
            for &d in targets {
                assert!(docs[d as usize].1.binary_search(term).is_ok());
            }
        }
    }

    #[test]
    fn measure_counts_false_positives() {
        let q = PlantedQueries {
            queries: vec![(100, vec![0, 1]), (101, vec![2])],
        };
        // An oracle with one extra doc on the second query.
        let m = q.measure(10, |t| if t == 100 { vec![0, 1] } else { vec![2, 7] });
        assert_eq!(m.false_positives, 1);
        assert_eq!(m.negatives, (10 - 2) + (10 - 1));
        assert_eq!(m.affected_queries, 1);
        assert!((m.per_doc_rate() - 1.0 / 17.0).abs() < 1e-12);
        assert!((m.any_fp_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "false negative")]
    fn measure_rejects_false_negatives() {
        let q = PlantedQueries {
            queries: vec![(100, vec![0, 1])],
        };
        let _ = q.measure(10, |_| vec![0]);
    }
}
