//! Synthetic ENA-like archives (the 170TB-dataset stand-in; DESIGN.md
//! "Substitutions" item 1).
//!
//! The paper's measured statistics for 1000 random ENA documents (§5.1):
//! mean 377.6M k-mers (std 354.9M) per document, of which mean 95M unique
//! (std 103.1M). Scaled down ~2000×, that is a heavy-tailed distribution
//! with std ≈ mean — a lognormal fits this shape; we clip it to keep bench
//! runtimes bounded.
//!
//! Two generation paths mirror the paper's two input formats:
//!
//! * **McCortex path** ([`SyntheticArchive::generate`]) — documents arrive
//!   as distinct k-mer sets directly (cheap, exact), modelling pre-filtered
//!   `.ctx` files.
//! * **FASTQ path** ([`SyntheticArchive::generate_fastq`]) — documents are
//!   simulated genomes shredded into error-laden reads; k-mers are extracted
//!   on ingestion, so error noise inflates the k-mer sets exactly as the
//!   paper describes for raw-read inputs.

use rambo_kmer::sim::GenomeSimulator;
use rambo_kmer::KmerSet;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a synthetic archive.
#[derive(Debug, Clone, Copy)]
pub struct ArchiveParams {
    /// Number of documents `K`.
    pub docs: usize,
    /// Mean distinct terms per document.
    pub mean_terms: usize,
    /// Standard deviation of distinct terms per document.
    pub std_terms: usize,
    /// Fraction of each document drawn from its family's shared ancestor
    /// pool (creates multiplicity `V > 1`); the rest is document-private.
    pub shared_fraction: f64,
    /// Documents per family (ancestor pool).
    pub family_size: usize,
    /// RNG seed.
    pub seed: u64,
}

impl ArchiveParams {
    /// ENA-like preset scaled by `scale`: at `scale = 1.0`, the per-document
    /// unique-k-mer statistics are the paper's (95M ± 103M); benches use
    /// `scale ≈ 1/2000`.
    #[must_use]
    pub fn ena_like(docs: usize, scale: f64, seed: u64) -> Self {
        Self {
            docs,
            mean_terms: ((95.0e6 * scale) as usize).max(16),
            std_terms: ((103.0e6 * scale) as usize).max(8),
            shared_fraction: 0.3,
            family_size: 10,
            seed,
        }
    }

    /// Small preset for tests.
    #[must_use]
    pub fn tiny(docs: usize, seed: u64) -> Self {
        Self {
            docs,
            mean_terms: 200,
            std_terms: 100,
            shared_fraction: 0.3,
            family_size: 5,
            seed,
        }
    }
}

/// A generated archive: named documents with distinct `u64` terms, plus the
/// exact per-document contents for ground-truth checks.
#[derive(Debug, Clone)]
pub struct SyntheticArchive {
    /// `(name, sorted distinct terms)` per document — the shape every index
    /// in this repository ingests.
    pub docs: Vec<(String, Vec<u64>)>,
}

/// Sample a lognormal with the given mean/std (moment-matched), clipped to
/// `[lo, hi]`.
fn lognormal_clipped(rng: &mut StdRng, mean: f64, std: f64, lo: usize, hi: usize) -> usize {
    // Moment matching: for LogNormal(μ, σ²), mean = e^{μ+σ²/2},
    // var = (e^{σ²}−1)e^{2μ+σ²}.
    let cv2 = (std / mean).powi(2);
    let sigma2 = (1.0 + cv2).ln();
    let mu = mean.ln() - sigma2 / 2.0;
    // Box–Muller normal.
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let x = (mu + sigma2.sqrt() * z).exp();
    (x.round() as usize).clamp(lo, hi)
}

impl SyntheticArchive {
    /// McCortex-path generation: documents as term sets with family overlap.
    ///
    /// Families of `family_size` documents share an ancestor pool; each
    /// document takes `shared_fraction` of its terms from the pool (uniform
    /// with replacement → realistic multiplicity spread) and the rest
    /// private. Term ids are disjoint across pools/documents by
    /// construction, so the ground truth is exactly recoverable.
    ///
    /// # Panics
    /// Panics if `docs == 0` or `family_size == 0`.
    #[must_use]
    pub fn generate(params: &ArchiveParams) -> Self {
        assert!(params.docs > 0 && params.family_size > 0);
        let mut rng = StdRng::seed_from_u64(params.seed);
        let mean = params.mean_terms as f64;
        let std = params.std_terms as f64;
        let lo = (params.mean_terms / 8).max(4);
        let hi = params.mean_terms * 8;

        let n_families = params.docs.div_ceil(params.family_size);
        // Ancestor pools: family f owns term ids tagged with (1, f).
        let pool_size = (mean * params.shared_fraction * 2.0) as u64 + 4;
        let mut docs = Vec::with_capacity(params.docs);
        for d in 0..params.docs {
            let family = (d / params.family_size) as u64;
            let _ = n_families;
            let n = lognormal_clipped(&mut rng, mean, std, lo, hi);
            let n_shared = ((n as f64) * params.shared_fraction) as usize;
            let mut terms: Vec<u64> = Vec::with_capacity(n);
            // Shared part: tag bit 63 set, family in bits 40.., pool offset low.
            for _ in 0..n_shared {
                let offset = rng.gen_range(0..pool_size);
                terms.push((1u64 << 63) | (family << 40) | offset);
            }
            // Private part: tag bit 63 clear, doc id in bits 40...
            for t in 0..(n - n_shared) as u64 {
                terms.push(((d as u64) << 40) | t);
            }
            terms.sort_unstable();
            terms.dedup();
            docs.push((format!("ENA-{d:06}"), terms));
        }
        Self { docs }
    }

    /// FASTQ-path generation: genomes → error-laden reads → k-mer sets.
    ///
    /// `genome_len` bases per document, derived in families from ancestors
    /// with 1% divergence, shredded into 150bp reads at the given coverage
    /// with `error_rate` substitutions. K-mer extraction happens on the read
    /// set, so errors inflate cardinality (the paper's reason FASTQ
    /// ingestion is slower and FASTQ indexes bigger, Table 2/3).
    ///
    /// # Panics
    /// Panics if `docs == 0` or `genome_len < 200`.
    #[must_use]
    pub fn generate_fastq(
        docs: usize,
        genome_len: usize,
        coverage: f64,
        error_rate: f64,
        k: usize,
        seed: u64,
    ) -> Self {
        assert!(docs > 0 && genome_len >= 200);
        let mut sim = GenomeSimulator::new(seed);
        let family_size = 5;
        let mut out = Vec::with_capacity(docs);
        let mut ancestor = sim.random_genome(genome_len);
        for d in 0..docs {
            if d % family_size == 0 && d > 0 {
                ancestor = sim.random_genome(genome_len);
            }
            let genome = sim.mutate(&ancestor, 0.01);
            let reads = sim.simulate_reads(&genome, 150, coverage, error_rate);
            let set = KmerSet::from_sequences(reads.iter().map(|r| r.seq.as_slice()), k, false);
            out.push((format!("FASTQ-{d:06}"), set.kmers().to_vec()));
        }
        Self { docs: out }
    }

    /// Number of documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// True when empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// Total distinct (document, term) pairs — `Σ|S|`.
    #[must_use]
    pub fn total_terms(&self) -> usize {
        self.docs.iter().map(|(_, t)| t.len()).sum()
    }

    /// Mean distinct terms per document.
    #[must_use]
    pub fn mean_terms(&self) -> f64 {
        if self.docs.is_empty() {
            0.0
        } else {
            self.total_terms() as f64 / self.docs.len() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let p = ArchiveParams::tiny(20, 7);
        let a = SyntheticArchive::generate(&p);
        let b = SyntheticArchive::generate(&p);
        assert_eq!(a.docs, b.docs);
        let mut p2 = p;
        p2.seed = 8;
        assert_ne!(a.docs, SyntheticArchive::generate(&p2).docs);
    }

    #[test]
    fn cardinalities_track_requested_moments() {
        let p = ArchiveParams {
            docs: 400,
            mean_terms: 1000,
            std_terms: 500,
            shared_fraction: 0.2,
            family_size: 8,
            seed: 3,
        };
        let a = SyntheticArchive::generate(&p);
        let mean = a.mean_terms();
        assert!(
            (600.0..1400.0).contains(&mean),
            "mean {mean} too far from requested 1000"
        );
        for (_, terms) in &a.docs {
            assert!(terms.windows(2).all(|w| w[0] < w[1]), "sorted + distinct");
        }
    }

    #[test]
    fn families_share_terms_strangers_do_not() {
        let p = ArchiveParams::tiny(10, 9); // 2 families of 5
        let a = SyntheticArchive::generate(&p);
        let shared = |x: &[u64], y: &[u64]| -> usize {
            x.iter().filter(|t| y.binary_search(t).is_ok()).count()
        };
        // Same family (docs 0 and 1) share ancestor-pool terms.
        let same = shared(&a.docs[0].1, &a.docs[1].1);
        assert!(same > 0, "family members must overlap");
        // Different families (docs 0 and 7) share nothing.
        let cross = shared(&a.docs[0].1, &a.docs[7].1);
        assert_eq!(cross, 0, "cross-family overlap impossible by construction");
    }

    #[test]
    fn ena_preset_scales() {
        let small = ArchiveParams::ena_like(10, 1.0 / 2000.0, 1);
        assert_eq!(small.mean_terms, 47_500);
        let tiny = ArchiveParams::ena_like(10, 1e-9, 1);
        assert_eq!(tiny.mean_terms, 16, "floor respected");
    }

    #[test]
    fn fastq_path_produces_more_kmers_with_errors() {
        let clean = SyntheticArchive::generate_fastq(3, 2000, 4.0, 0.0, 21, 5);
        let noisy = SyntheticArchive::generate_fastq(3, 2000, 4.0, 0.02, 21, 5);
        // Errors mint novel k-mers, so noisy documents are strictly bigger
        // in aggregate.
        assert!(
            noisy.total_terms() > clean.total_terms(),
            "noisy {} vs clean {}",
            noisy.total_terms(),
            clean.total_terms()
        );
    }

    #[test]
    fn fastq_family_members_overlap() {
        let a = SyntheticArchive::generate_fastq(4, 3000, 6.0, 0.0, 21, 11);
        let shared: usize = a.docs[0]
            .1
            .iter()
            .filter(|t| a.docs[1].1.binary_search(t).is_ok())
            .count();
        let frac = shared as f64 / a.docs[0].1.len() as f64;
        assert!(frac > 0.3, "family k-mer overlap only {frac}");
    }

    #[test]
    fn lognormal_clipping_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = lognormal_clipped(&mut rng, 100.0, 100.0, 10, 500);
            assert!((10..=500).contains(&v));
        }
    }
}
