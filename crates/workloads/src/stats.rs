//! Summary statistics for measurement series.

/// Arithmetic mean (0 for empty input).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two points).
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Percentile by nearest-rank (p in [0, 100]).
///
/// # Panics
/// Panics on empty input or out-of-range `p`.
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty series");
    assert!((0.0..=100.0).contains(&p));
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in measurements"));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Median (50th percentile).
///
/// # Panics
/// Panics on empty input.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Geometric mean of positive values.
///
/// # Panics
/// Panics on empty input or non-positive values.
#[must_use]
pub fn geo_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geo_mean needs positive values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138_089_935).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs), 3.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }

    #[test]
    fn geometric_mean() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geo_mean(&[8.0]) - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geo_mean_rejects_zero() {
        let _ = geo_mean(&[1.0, 0.0]);
    }
}
