//! Summary statistics for measurement series, plus a lock-free latency
//! histogram for concurrent recording (serving paths record from many
//! threads; a mutex around a `Vec<f64>` would serialize the hot path).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Arithmetic mean (0 for empty input).
#[must_use]
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Sample standard deviation (0 for fewer than two points).
#[must_use]
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Percentile by nearest-rank (p in [0, 100]).
///
/// # Panics
/// Panics on empty input or out-of-range `p`.
#[must_use]
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty series");
    assert!((0.0..=100.0).contains(&p));
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in measurements"));
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank]
}

/// Median (50th percentile).
///
/// # Panics
/// Panics on empty input.
#[must_use]
pub fn median(xs: &[f64]) -> f64 {
    percentile(xs, 50.0)
}

/// Geometric mean of positive values.
///
/// # Panics
/// Panics on empty input or non-positive values.
#[must_use]
pub fn geo_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty());
    assert!(
        xs.iter().all(|&x| x > 0.0),
        "geo_mean needs positive values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Linear sub-buckets per power-of-two octave. Eight sub-buckets bound the
/// relative quantization error at `1/8 ≈ 12.5%` of the value — plenty for
/// latency percentiles, where run-to-run noise is larger.
const HIST_SUB_BITS: u32 = 3;
const HIST_SUB: usize = 1 << HIST_SUB_BITS;
/// Bucket count covering the full `u64` nanosecond range: values below
/// `HIST_SUB` get exact buckets, every octave above contributes `HIST_SUB`.
const HIST_BUCKETS: usize = HIST_SUB + (64 - HIST_SUB_BITS as usize) * HIST_SUB;

/// Lock-free log-linear latency histogram (HDR-histogram-style: power-of-two
/// octaves split into `HIST_SUB` linear sub-buckets), recordable from any
/// number of threads with one relaxed atomic increment per sample.
///
/// Quantiles are approximate — a sample lands in a bucket spanning at most
/// 12.5% of its value — which is the standard trade for a fixed-size,
/// allocation-free, contention-free recorder. Exact percentiles for offline
/// series stay in [`percentile`].
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: Box<[AtomicU64; HIST_BUCKETS]>,
    total: AtomicU64,
    sum_ns: AtomicU64,
    max_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Snapshot clone (bucket-by-bucket relaxed loads); concurrent recorders
/// make it approximate the same way live reads are.
impl Clone for LatencyHistogram {
    fn clone(&self) -> Self {
        let h = Self::new();
        h.merge(self);
        h
    }
}

/// Bucket index for a nanosecond value.
fn hist_bucket(ns: u64) -> usize {
    if ns < HIST_SUB as u64 {
        return ns as usize;
    }
    let octave = 63 - ns.leading_zeros(); // ns ∈ [2^octave, 2^{octave+1})
    let sub = (ns >> (octave - HIST_SUB_BITS)) as usize & (HIST_SUB - 1);
    (octave - HIST_SUB_BITS + 1) as usize * HIST_SUB + sub
}

/// Representative (upper-bound) nanosecond value of a bucket — the inverse
/// of [`hist_bucket`], quoting the bucket's inclusive top so quantiles never
/// under-report.
fn hist_value(bucket: usize) -> u64 {
    if bucket < HIST_SUB {
        return bucket as u64;
    }
    let octave = (bucket / HIST_SUB) as u32 + HIST_SUB_BITS - 1;
    let sub = (bucket % HIST_SUB) as u64;
    let base = 1u64 << octave;
    let width = base >> HIST_SUB_BITS;
    // `base - 1` first: the top octave's upper bound is u64::MAX and the
    // unsubtracted sum would wrap.
    (base - 1) + (sub + 1) * width
}

impl LatencyHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: Box::new([0u64; HIST_BUCKETS].map(AtomicU64::new)),
            total: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            max_ns: AtomicU64::new(0),
        }
    }

    /// Record one sample. Relaxed atomics: counts are only read after the
    /// recording threads are joined (or approximately, for live monitoring).
    pub fn record(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.counts[hist_bucket(ns)].fetch_add(1, Ordering::Relaxed);
        self.total.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    /// Mean of the recorded samples (exact — tracked outside the buckets).
    #[must_use]
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed) / n)
    }

    /// Largest recorded sample (exact).
    #[must_use]
    pub fn max(&self) -> Duration {
        Duration::from_nanos(self.max_ns.load(Ordering::Relaxed))
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the bucket
    /// where the cumulative count reaches `⌈q·n⌉`. Returns zero for an empty
    /// histogram.
    ///
    /// # Panics
    /// Panics when `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut seen = 0u64;
        for (b, c) in self.counts.iter().enumerate() {
            seen += c.load(Ordering::Relaxed);
            if seen >= rank {
                return Duration::from_nanos(hist_value(b));
            }
        }
        self.max()
    }

    /// Fold `other`'s samples into `self` (bucket-wise count addition;
    /// count, mean and max stay exact). Aggregating per-shard or per-tier
    /// recorders into an overall distribution is bucket-exact — unlike
    /// averaging the shards' quantiles, which has no meaning. Quiesce (or
    /// accept approximate reads from) concurrent recorders on both sides.
    pub fn merge(&self, other: &LatencyHistogram) {
        for (dst, src) in self.counts.iter().zip(other.counts.iter()) {
            let c = src.load(Ordering::Relaxed);
            if c != 0 {
                dst.fetch_add(c, Ordering::Relaxed);
            }
        }
        self.total
            .fetch_add(other.total.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
        self.max_ns
            .fetch_max(other.max_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Reset every counter to zero (not atomic across buckets; callers
    /// quiesce recorders first).
    pub fn clear(&self) {
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed);
        }
        self.total.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138_089_935).abs() < 1e-6);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(median(&xs), 3.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
    }

    #[test]
    fn geometric_mean() {
        assert!((geo_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geo_mean(&[8.0]) - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geo_mean_rejects_zero() {
        let _ = geo_mean(&[1.0, 0.0]);
    }

    #[test]
    fn hist_bucket_and_value_are_consistent() {
        // Buckets partition the range: every value maps into a bucket whose
        // representative upper bound maps back to the same bucket, and
        // bucket indices are monotone in the value.
        let probes: Vec<u64> = (0..200)
            .chain([
                255,
                256,
                257,
                1 << 20,
                (1 << 20) + 1,
                u64::MAX - 1,
                u64::MAX,
            ])
            .collect();
        let mut last = 0usize;
        for &ns in &probes {
            let b = hist_bucket(ns);
            assert!(b < HIST_BUCKETS);
            assert!(b >= last, "bucket index must be monotone at {ns}");
            last = b;
            let top = hist_value(b);
            assert!(top >= ns, "upper bound {top} below sample {ns}");
            assert_eq!(hist_bucket(top), b, "upper bound re-buckets at {ns}");
            // Relative error of quoting the upper bound: ≤ 1/8 + rounding.
            if ns >= 8 {
                assert!((top - ns) as f64 / ns as f64 <= 0.125 + 1e-9);
            }
        }
    }

    #[test]
    fn histogram_quantiles_track_exact_percentiles() {
        let h = LatencyHistogram::new();
        let samples: Vec<u64> = (1..=1000u64).map(|i| i * 997 % 50_000 + 1).collect();
        for &ns in &samples {
            h.record(Duration::from_nanos(ns));
        }
        assert_eq!(h.count(), 1000);
        let exact: Vec<f64> = samples.iter().map(|&x| x as f64).collect();
        for q in [0.5, 0.9, 0.99] {
            let approx = h.quantile(q).as_nanos() as f64;
            let truth = percentile(&exact, q * 100.0);
            let rel = (approx - truth).abs() / truth;
            assert!(rel < 0.15, "q={q}: approx {approx} vs exact {truth}");
        }
        assert_eq!(
            h.max().as_nanos() as f64,
            exact.iter().copied().fold(0.0, f64::max)
        );
        assert!(h.quantile(1.0) >= h.max());
        assert_eq!(h.quantile(0.0).as_nanos(), h.quantile(1e-9).as_nanos());
    }

    #[test]
    fn histogram_merge_matches_recording_into_one() {
        let (a, b, all) = (
            LatencyHistogram::new(),
            LatencyHistogram::new(),
            LatencyHistogram::new(),
        );
        for i in 1..=500u64 {
            let ns = Duration::from_nanos(i * 131 % 20_000 + 1);
            if i % 3 == 0 {
                a.record(ns)
            } else {
                b.record(ns)
            }
            all.record(ns);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert_eq!(a.mean(), all.mean());
        assert_eq!(a.max(), all.max());
        for q in [0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), all.quantile(q), "q={q}");
        }
    }

    #[test]
    fn histogram_concurrent_recording_loses_nothing() {
        let h = LatencyHistogram::new();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let h = &h;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        h.record(Duration::from_nanos(t * 1000 + i + 1));
                    }
                });
            }
        });
        assert_eq!(h.count(), 4000);
        assert!(h.mean() > Duration::ZERO);
        h.clear();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), Duration::ZERO);
    }
}
