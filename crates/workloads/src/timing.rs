//! Wall-clock measurement helpers for the bench harnesses.
//!
//! The paper reports query time as single-thread CPU time and construction
//! time as wall-clock over 40 threads (§5.2). In this reproduction every
//! measured section is CPU-bound and single-process, so wall time over the
//! measured thread is the faithful equivalent; this is noted in
//! EXPERIMENTS.md.

use std::time::{Duration, Instant};

/// Run `f`, returning its result and elapsed wall time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// A restartable stopwatch accumulating lap times.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
    laps: Vec<Duration>,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::new()
    }
}

impl Stopwatch {
    /// Start immediately.
    #[must_use]
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            laps: Vec::new(),
        }
    }

    /// Record a lap and restart the interval.
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let d = now - self.start;
        self.laps.push(d);
        self.start = now;
        d
    }

    /// Elapsed time in the current interval (no lap recorded).
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// All recorded laps.
    #[must_use]
    pub fn laps(&self) -> &[Duration] {
        &self.laps
    }

    /// Mean lap duration (zero when no laps).
    #[must_use]
    pub fn mean_lap(&self) -> Duration {
        if self.laps.is_empty() {
            Duration::ZERO
        } else {
            self.laps.iter().sum::<Duration>() / self.laps.len() as u32
        }
    }
}

/// Format a duration the way the paper's tables do (`1m25s`, `52m`, `2h30m`,
/// `0.018 ms`).
#[must_use]
pub fn human_duration(d: Duration) -> String {
    let secs = d.as_secs_f64();
    if secs >= 3600.0 {
        let h = (secs / 3600.0).floor();
        let m = ((secs - h * 3600.0) / 60.0).round();
        format!("{h:.0}h{m:.0}m")
    } else if secs >= 60.0 {
        let m = (secs / 60.0).floor();
        let s = (secs - m * 60.0).round();
        format!("{m:.0}m{s:.0}s")
    } else if secs >= 1.0 {
        format!("{secs:.2}s")
    } else {
        format!("{:.4} ms", secs * 1e3)
    }
}

/// Format bytes like the paper's size tables (`12.8GB`, `51 MB`).
#[must_use]
pub fn human_bytes(bytes: usize) -> String {
    const GB: f64 = 1e9;
    const MB: f64 = 1e6;
    const KB: f64 = 1e3;
    let b = bytes as f64;
    if b >= GB {
        format!("{:.2}GB", b / GB)
    } else if b >= MB {
        format!("{:.2}MB", b / MB)
    } else if b >= KB {
        format!("{:.1}KB", b / KB)
    } else {
        format!("{bytes}B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_returns_result_and_duration() {
        let (v, d) = time(|| (0..1000).sum::<u64>());
        assert_eq!(v, 499_500);
        assert!(d >= Duration::ZERO);
    }

    #[test]
    fn stopwatch_accumulates_laps() {
        let mut sw = Stopwatch::new();
        std::thread::sleep(Duration::from_millis(2));
        let lap = sw.lap();
        assert!(lap >= Duration::from_millis(1));
        sw.lap();
        assert_eq!(sw.laps().len(), 2);
        assert!(sw.mean_lap() > Duration::ZERO);
    }

    #[test]
    fn duration_formats() {
        assert_eq!(human_duration(Duration::from_secs(9000)), "2h30m");
        assert_eq!(human_duration(Duration::from_secs(85)), "1m25s");
        assert_eq!(human_duration(Duration::from_secs_f64(2.5)), "2.50s");
        assert_eq!(human_duration(Duration::from_micros(18)), "0.0180 ms");
    }

    #[test]
    fn byte_formats() {
        assert_eq!(human_bytes(12_800_000_000), "12.80GB");
        assert_eq!(human_bytes(51_000_000), "51.00MB");
        assert_eq!(human_bytes(2_048), "2.0KB");
        assert_eq!(human_bytes(12), "12B");
    }
}
