//! Workload generation and measurement harness utilities reproducing the
//! RAMBO paper's experimental methodology (§5).
//!
//! * [`archive`] — synthetic ENA-like genome archives: per-document distinct
//!   k-mer counts drawn from a clipped lognormal matched to the paper's §5.1
//!   statistics (scaled), with shared-ancestry overlap; both the *McCortex*
//!   path (pre-filtered distinct k-mer sets) and the *FASTQ* path (simulated
//!   error-laden reads, k-mers extracted on ingestion).
//! * [`fpr`] — the §5.2 false-positive methodology: plant unseen terms with
//!   exponentially distributed multiplicity `V ~ Exp(α)`, query them, and
//!   compare against the recorded ground truth.
//! * [`timing`] / [`stats`] — wall-clock measurement and summary statistics.
//! * [`telemetry`] — histogram-backed queue/stall observers for the
//!   ingestion pipeline.
//! * [`report`] — fixed-width table printing so each harness binary emits
//!   rows shaped like the paper's tables.
//! * [`netclient`] — a raw-bytes TCP test client (timeouts, frame-split
//!   injection, binary and RESP framings) shared by the serving crates'
//!   protocol test suites.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod archive;
pub mod fpr;
pub mod netclient;
pub mod report;
pub mod stats;
pub mod telemetry;
pub mod timing;

pub use archive::{ArchiveParams, SyntheticArchive};
pub use fpr::{FprMeasurement, PlantedQueries};
pub use netclient::TestClient;
pub use report::Table;
pub use telemetry::{CacheSnapshot, CacheTelemetry, QueueTelemetry};
pub use timing::{time, Stopwatch};
