//! Raw-bytes TCP test client shared by the protocol test suites.
//!
//! Every serving front in the workspace (catalog, live, cluster, tenant)
//! grew its own ad-hoc `TcpStream` snippets for the awkward cases the
//! polished clients hide: malformed frames, half-written frames, stalled
//! peers, byte-exact transcript replay. [`TestClient`] collects those
//! patterns behind knobs:
//!
//! * **connect/timeout** — bounded connect and I/O timeouts by default, so
//!   a wedged server fails a test in seconds instead of hanging CI;
//! * **frame-split injection** — [`TestClient::set_split`] makes every
//!   subsequent send dribble out in `chunk`-byte slices with a pause in
//!   between, exercising the reactors' partial-frame reassembly across
//!   poll ticks (the fuzz suites drive this knob from a seeded RNG);
//! * **framings** — helpers for both wire shapes: u32-LE length-prefixed
//!   binary frames ([`TestClient::send_framed`]/[`TestClient::read_frame`])
//!   and RESP2 ([`TestClient::send_resp`]/[`TestClient::read_resp_reply`],
//!   which returns one reply's exact bytes for transcript diffing).
//!
//! The client is deliberately protocol-dumb: it never interprets replies
//! beyond finding their boundaries, because the conformance suites assert
//! on raw bytes.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Default connect and I/O bound: generous for CI, far below a hang.
const DEFAULT_TIMEOUT: Duration = Duration::from_secs(10);

/// A blocking TCP client for protocol tests, with timeout and
/// frame-splitting knobs. See the module docs.
#[derive(Debug)]
pub struct TestClient {
    stream: TcpStream,
    /// When set, sends are split into `chunk`-byte writes with `pause`
    /// between them.
    split: Option<(usize, Duration)>,
    /// Unconsumed reply bytes (a read may pull more than one reply).
    buf: Vec<u8>,
}

impl TestClient {
    /// Connect with the default 10-second connect and I/O timeouts.
    ///
    /// # Errors
    /// Propagates resolution and connection failures.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        Self::connect_with(addr, DEFAULT_TIMEOUT, Some(DEFAULT_TIMEOUT))
    }

    /// Connect with explicit bounds. `io_timeout: None` means blocking
    /// reads and writes (use only when the test owns the server's
    /// lifecycle).
    ///
    /// # Errors
    /// Propagates resolution and connection failures.
    pub fn connect_with(
        addr: impl ToSocketAddrs,
        connect_timeout: Duration,
        io_timeout: Option<Duration>,
    ) -> io::Result<Self> {
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&candidate, connect_timeout) {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(io_timeout)?;
                    stream.set_write_timeout(io_timeout)?;
                    return Ok(Self {
                        stream,
                        split: None,
                        buf: Vec::new(),
                    });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// The connected peer.
    ///
    /// # Errors
    /// Propagates the socket query failure.
    pub fn peer(&self) -> io::Result<SocketAddr> {
        self.stream.peer_addr()
    }

    /// Split every subsequent send into `chunk`-byte writes separated by
    /// `pause` (flushing each), so the server sees the bytes across many
    /// poll ticks. `chunk` is clamped to at least 1.
    pub fn set_split(&mut self, chunk: usize, pause: Duration) {
        self.split = Some((chunk.max(1), pause));
    }

    /// Turn frame splitting back off.
    pub fn clear_split(&mut self) {
        self.split = None;
    }

    /// Send raw bytes, honoring the split knob.
    ///
    /// # Errors
    /// Propagates transport failures.
    pub fn send(&mut self, bytes: &[u8]) -> io::Result<()> {
        match self.split {
            None => self.stream.write_all(bytes),
            Some((chunk, pause)) => {
                for (i, piece) in bytes.chunks(chunk).enumerate() {
                    if i > 0 && !pause.is_zero() {
                        std::thread::sleep(pause);
                    }
                    self.stream.write_all(piece)?;
                    self.stream.flush()?;
                }
                Ok(())
            }
        }
    }

    /// Send one binary frame: u32-LE length prefix followed by `payload`.
    ///
    /// # Errors
    /// Propagates transport failures.
    pub fn send_framed(&mut self, payload: &[u8]) -> io::Result<()> {
        let mut wire = Vec::with_capacity(4 + payload.len());
        wire.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("frame fits u32")
                .to_le_bytes(),
        );
        wire.extend_from_slice(payload);
        self.send(&wire)
    }

    /// Half-close the write side: the server sees EOF after what was sent.
    ///
    /// # Errors
    /// Propagates the shutdown failure.
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Read one binary frame's payload (u32-LE length prefix stripped).
    ///
    /// # Errors
    /// Propagates transport failures, including timeouts; a length above
    /// `max_len` is reported as [`io::ErrorKind::InvalidData`].
    pub fn read_frame(&mut self, max_len: usize) -> io::Result<Vec<u8>> {
        let head = self.read_exact_buffered(4)?;
        let len = u32::from_le_bytes(head[..4].try_into().expect("4 bytes")) as usize;
        if len > max_len {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame length {len} above cap {max_len}"),
            ));
        }
        self.read_exact_buffered(len)
    }

    /// Read until the server closes the connection, returning everything
    /// (buffered leftovers included).
    ///
    /// # Errors
    /// Propagates transport failures, including read timeouts.
    pub fn read_until_close(&mut self) -> io::Result<Vec<u8>> {
        let mut out = std::mem::take(&mut self.buf);
        self.stream.read_to_end(&mut out)?;
        Ok(out)
    }

    /// Encode `args` as a RESP2 array of bulk strings and send it (split
    /// knob honored) — the framing `redis-cli` uses.
    ///
    /// # Errors
    /// Propagates transport failures.
    pub fn send_resp(&mut self, args: &[&[u8]]) -> io::Result<()> {
        let mut wire = format!("*{}\r\n", args.len()).into_bytes();
        for arg in args {
            wire.extend_from_slice(format!("${}\r\n", arg.len()).as_bytes());
            wire.extend_from_slice(arg);
            wire.extend_from_slice(b"\r\n");
        }
        self.send(&wire)
    }

    /// Send one inline RESP command line (the framing `nc` users type).
    ///
    /// # Errors
    /// Propagates transport failures.
    pub fn send_resp_inline(&mut self, line: &str) -> io::Result<()> {
        let mut wire = line.as_bytes().to_vec();
        wire.extend_from_slice(b"\r\n");
        self.send(&wire)
    }

    /// Read exactly one RESP reply and return its raw bytes (type marker
    /// and CRLFs included) — the unit of transcript diffing. Nested arrays
    /// are followed to their end.
    ///
    /// # Errors
    /// Propagates transport failures (including timeouts, which is how a
    /// test discovers the server chose not to answer) and reports replies
    /// that violate RESP framing as [`io::ErrorKind::InvalidData`].
    pub fn read_resp_reply(&mut self) -> io::Result<Vec<u8>> {
        loop {
            match resp_reply_len(&self.buf)? {
                Some(n) => {
                    let reply = self.buf.drain(..n).collect();
                    return Ok(reply);
                }
                None => self.fill()?,
            }
        }
    }

    /// Read exactly `n` bytes — the transcript-replay primitive: a golden
    /// suite knows precisely how many reply bytes a step owes it.
    ///
    /// # Errors
    /// Propagates transport failures, including timeouts and early close.
    pub fn read_exact(&mut self, n: usize) -> io::Result<Vec<u8>> {
        self.read_exact_buffered(n)
    }

    /// Direct access to the underlying stream for cases the knobs don't
    /// cover (note: reads through the stream bypass this client's buffer).
    pub fn stream_mut(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Read `n` bytes through the internal buffer.
    fn read_exact_buffered(&mut self, n: usize) -> io::Result<Vec<u8>> {
        while self.buf.len() < n {
            self.fill()?;
        }
        Ok(self.buf.drain(..n).collect())
    }

    /// Pull at least one byte from the socket into the buffer.
    fn fill(&mut self) -> io::Result<()> {
        let mut chunk = [0u8; 4096];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "server closed mid-reply",
                    ))
                }
                Ok(n) => {
                    self.buf.extend_from_slice(&chunk[..n]);
                    return Ok(());
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

/// Length in bytes of the first complete RESP reply in `buf`, or `None`
/// when more bytes are needed.
fn resp_reply_len(buf: &[u8]) -> io::Result<Option<usize>> {
    fn line_end(buf: &[u8], from: usize) -> Option<usize> {
        buf[from..]
            .windows(2)
            .position(|w| w == b"\r\n")
            .map(|i| from + i + 2)
    }
    fn value_end(buf: &[u8], from: usize) -> io::Result<Option<usize>> {
        let Some(&marker) = buf.get(from) else {
            return Ok(None);
        };
        let Some(after_line) = line_end(buf, from + 1) else {
            return Ok(None);
        };
        let header = &buf[from + 1..after_line - 2];
        let int_header = || -> io::Result<i64> {
            std::str::from_utf8(header)
                .ok()
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| {
                    io::Error::new(io::ErrorKind::InvalidData, "malformed RESP length header")
                })
        };
        match marker {
            b'+' | b'-' | b':' => Ok(Some(after_line)),
            b'$' => {
                let n = int_header()?;
                if n < 0 {
                    return Ok(Some(after_line)); // null bulk
                }
                #[allow(clippy::cast_sign_loss)]
                let end = after_line + n as usize + 2;
                Ok((buf.len() >= end).then_some(end))
            }
            b'*' => {
                let n = int_header()?;
                let mut pos = after_line;
                for _ in 0..n.max(0) {
                    match value_end(buf, pos)? {
                        Some(next) => pos = next,
                        None => return Ok(None),
                    }
                }
                Ok(Some(pos))
            }
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unknown RESP type byte {other:#04x}"),
            )),
        }
    }
    value_end(buf, 0)
}

#[cfg(test)]
mod tests {
    use super::resp_reply_len;

    #[test]
    fn reply_boundaries() {
        assert_eq!(resp_reply_len(b"+OK\r\n:3\r\n").unwrap(), Some(5));
        assert_eq!(resp_reply_len(b"$5\r\nhello\r\n").unwrap(), Some(11));
        assert_eq!(resp_reply_len(b"$-1\r\n").unwrap(), Some(5));
        assert_eq!(
            resp_reply_len(b"*2\r\n:1\r\n$2\r\nab\r\ntrailing").unwrap(),
            Some(16)
        );
        assert_eq!(resp_reply_len(b"*0\r\n").unwrap(), Some(4));
        // Incomplete prefixes wait for more bytes.
        for cut in 0..11 {
            assert_eq!(resp_reply_len(&b"$5\r\nhello\r\n"[..cut]).unwrap(), None);
        }
        // Garbage is an error, not a hang.
        assert!(resp_reply_len(b"x\r\n").is_err());
        assert!(resp_reply_len(b"$abc\r\n").is_err());
    }
}
