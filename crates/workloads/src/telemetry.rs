//! Pipeline telemetry: a histogram-backed [`PipelineObserver`] so ingestion
//! benchmarks can report not just *how often* the bounded queue stalled but
//! the *distribution* of stall durations (a handful of long producer stalls
//! and a stream of short ones need different fixes: the former wants a
//! deeper queue, the latter a faster write stage).
//!
//! Built on [`LatencyHistogram`] — the same lock-free log-linear recorder
//! the serving engine uses — so recording from the pipeline's hot path is
//! one relaxed atomic increment per stall.

use crate::stats::LatencyHistogram;
use rambo_core::PipelineObserver;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram-backed queue telemetry for [`rambo_core::IngestPipeline`].
///
/// Wrap it in an `Arc`, attach via `IngestPipeline::observer`, and read the
/// histograms after the run (recording threads are joined by then).
#[derive(Debug, Default)]
pub struct QueueTelemetry {
    producer_stalls: LatencyHistogram,
    writer_stalls: LatencyHistogram,
    depth_high_water: AtomicU64,
}

impl QueueTelemetry {
    /// Empty telemetry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Distribution of producer-side stalls (blocked on a full queue: the
    /// write stage is the bottleneck).
    #[must_use]
    pub fn producer_stalls(&self) -> &LatencyHistogram {
        &self.producer_stalls
    }

    /// Distribution of writer-side stalls (blocked on an empty queue: the
    /// parse/hash stage is the bottleneck).
    #[must_use]
    pub fn writer_stalls(&self) -> &LatencyHistogram {
        &self.writer_stalls
    }

    /// Highest queue depth observed at enqueue time.
    #[must_use]
    pub fn depth_high_water(&self) -> u64 {
        self.depth_high_water.load(Ordering::Relaxed)
    }

    /// Reset all recorders (quiesce the pipeline first).
    pub fn clear(&self) {
        self.producer_stalls.clear();
        self.writer_stalls.clear();
        self.depth_high_water.store(0, Ordering::Relaxed);
    }
}

/// Lock-free counters for a result cache: every recorder is one relaxed
/// atomic op, safe to call from concurrent admission threads and batch
/// workers alike.
///
/// The byte gauge tracks resident payload size so callers can enforce a
/// byte budget (caches here are sized in bytes, not entries — a single
/// broad-tier hit list can outweigh a thousand point lookups).
#[derive(Debug, Default)]
pub struct CacheTelemetry {
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
    stale: AtomicU64,
    bytes: AtomicU64,
}

/// Point-in-time copy of a [`CacheTelemetry`]'s counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheSnapshot {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that fell through to evaluation.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Entries dropped because their stamped version lagged the catalog.
    pub stale: u64,
    /// Resident payload bytes at snapshot time.
    pub bytes: u64,
}

impl CacheSnapshot {
    /// Hits over total lookups; 0.0 when no lookups happened.
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Counter-wise sum of two snapshots — aggregate several caches (or
    /// the same cache across monitoring windows) into one set of totals.
    /// Saturating, so merging cannot panic on adversarial inputs.
    #[must_use]
    pub fn merged(&self, other: &Self) -> Self {
        Self {
            hits: self.hits.saturating_add(other.hits),
            misses: self.misses.saturating_add(other.misses),
            insertions: self.insertions.saturating_add(other.insertions),
            evictions: self.evictions.saturating_add(other.evictions),
            stale: self.stale.saturating_add(other.stale),
            bytes: self.bytes.saturating_add(other.bytes),
        }
    }
}

impl CacheTelemetry {
    /// Zeroed counters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Count a lookup answered from the cache.
    pub fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Count a lookup that missed (including version-stale drops, which
    /// additionally call [`Self::record_stale`]).
    pub fn record_miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Count an insertion of `bytes` resident payload.
    pub fn record_insert(&self, bytes: u64) {
        self.insertions.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Count a budget eviction freeing `bytes`.
    pub fn record_evict(&self, bytes: u64) {
        self.evictions.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Count a version-stale drop freeing `bytes`.
    pub fn record_stale(&self, bytes: u64) {
        self.stale.fetch_add(1, Ordering::Relaxed);
        self.bytes.fetch_sub(bytes, Ordering::Relaxed);
    }

    /// Copy out every counter.
    #[must_use]
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            stale: self.stale.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// Reset every counter to zero.
    pub fn clear(&self) {
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.insertions.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
        self.stale.store(0, Ordering::Relaxed);
        self.bytes.store(0, Ordering::Relaxed);
    }
}

impl PipelineObserver for QueueTelemetry {
    fn producer_stall(&self, waited: Duration) {
        self.producer_stalls.record(waited);
    }

    fn writer_stall(&self, waited: Duration) {
        self.writer_stalls.record(waited);
    }

    fn queue_depth(&self, depth: usize) {
        self.depth_high_water
            .fetch_max(depth as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambo_core::{IngestPipeline, RamboParams};
    use std::sync::Arc;

    #[test]
    fn telemetry_matches_pipeline_report() {
        let telemetry = Arc::new(QueueTelemetry::new());
        let docs: Vec<(String, Vec<u64>)> = (0..40)
            .map(|d| {
                let base = (d as u64) << 32;
                (format!("doc-{d}"), (0..200u64).map(|t| base | t).collect())
            })
            .collect();
        let (_, report) = IngestPipeline::new()
            .queue_depth(1)
            .observer(Arc::clone(&telemetry) as Arc<dyn PipelineObserver>)
            .build(RamboParams::flat(8, 3, 1 << 12, 2, 5), docs)
            .unwrap();
        assert_eq!(telemetry.producer_stalls().count(), report.producer_stalls);
        assert_eq!(telemetry.writer_stalls().count(), report.writer_stalls);
        assert_eq!(telemetry.depth_high_water(), report.max_queue_depth);
        // Stall durations in the histograms sum to roughly the report's
        // nanosecond totals (histogram buckets quote upper bounds, so the
        // histogram mean·count can only over-report, within 12.5%).
        if report.writer_stalls > 0 {
            let hist_total = telemetry.writer_stalls().mean().as_nanos() as u64
                * telemetry.writer_stalls().count();
            assert!(hist_total * 10 >= report.writer_stall_ns * 9);
        }
        telemetry.clear();
        assert_eq!(telemetry.producer_stalls().count(), 0);
        assert_eq!(telemetry.depth_high_water(), 0);
    }

    #[test]
    fn cache_telemetry_counts_and_byte_gauge_balance() {
        let t = CacheTelemetry::new();
        t.record_miss();
        t.record_insert(100);
        t.record_insert(40);
        t.record_hit();
        t.record_hit();
        t.record_evict(100);
        t.record_miss();
        t.record_stale(40);
        let s = t.snapshot();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 2);
        assert_eq!(s.insertions, 2);
        assert_eq!(s.evictions, 1);
        assert_eq!(s.stale, 1);
        assert_eq!(s.bytes, 0);
        assert!((s.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(CacheSnapshot::default().hit_ratio(), 0.0);
        t.clear();
        assert_eq!(t.snapshot(), CacheSnapshot::default());
    }

    #[test]
    fn snapshot_merge_sums_counters() {
        let a = CacheSnapshot {
            hits: 3,
            misses: 1,
            insertions: 2,
            evictions: 1,
            stale: 0,
            bytes: 100,
        };
        let b = CacheSnapshot {
            hits: 1,
            misses: 3,
            insertions: 1,
            evictions: 0,
            stale: 2,
            bytes: 50,
        };
        let m = a.merged(&b);
        assert_eq!(m.hits, 4);
        assert_eq!(m.misses, 4);
        assert_eq!(m.insertions, 3);
        assert_eq!(m.evictions, 1);
        assert_eq!(m.stale, 2);
        assert_eq!(m.bytes, 150);
        assert!((m.hit_ratio() - 0.5).abs() < 1e-12);
        assert_eq!(
            CacheSnapshot::default().merged(&CacheSnapshot::default()),
            CacheSnapshot::default()
        );
    }
}
