//! Pipeline telemetry: a histogram-backed [`PipelineObserver`] so ingestion
//! benchmarks can report not just *how often* the bounded queue stalled but
//! the *distribution* of stall durations (a handful of long producer stalls
//! and a stream of short ones need different fixes: the former wants a
//! deeper queue, the latter a faster write stage).
//!
//! Built on [`LatencyHistogram`] — the same lock-free log-linear recorder
//! the serving engine uses — so recording from the pipeline's hot path is
//! one relaxed atomic increment per stall.

use crate::stats::LatencyHistogram;
use rambo_core::PipelineObserver;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram-backed queue telemetry for [`rambo_core::IngestPipeline`].
///
/// Wrap it in an `Arc`, attach via `IngestPipeline::observer`, and read the
/// histograms after the run (recording threads are joined by then).
#[derive(Debug, Default)]
pub struct QueueTelemetry {
    producer_stalls: LatencyHistogram,
    writer_stalls: LatencyHistogram,
    depth_high_water: AtomicU64,
}

impl QueueTelemetry {
    /// Empty telemetry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Distribution of producer-side stalls (blocked on a full queue: the
    /// write stage is the bottleneck).
    #[must_use]
    pub fn producer_stalls(&self) -> &LatencyHistogram {
        &self.producer_stalls
    }

    /// Distribution of writer-side stalls (blocked on an empty queue: the
    /// parse/hash stage is the bottleneck).
    #[must_use]
    pub fn writer_stalls(&self) -> &LatencyHistogram {
        &self.writer_stalls
    }

    /// Highest queue depth observed at enqueue time.
    #[must_use]
    pub fn depth_high_water(&self) -> u64 {
        self.depth_high_water.load(Ordering::Relaxed)
    }

    /// Reset all recorders (quiesce the pipeline first).
    pub fn clear(&self) {
        self.producer_stalls.clear();
        self.writer_stalls.clear();
        self.depth_high_water.store(0, Ordering::Relaxed);
    }
}

impl PipelineObserver for QueueTelemetry {
    fn producer_stall(&self, waited: Duration) {
        self.producer_stalls.record(waited);
    }

    fn writer_stall(&self, waited: Duration) {
        self.writer_stalls.record(waited);
    }

    fn queue_depth(&self, depth: usize) {
        self.depth_high_water
            .fetch_max(depth as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rambo_core::{IngestPipeline, RamboParams};
    use std::sync::Arc;

    #[test]
    fn telemetry_matches_pipeline_report() {
        let telemetry = Arc::new(QueueTelemetry::new());
        let docs: Vec<(String, Vec<u64>)> = (0..40)
            .map(|d| {
                let base = (d as u64) << 32;
                (format!("doc-{d}"), (0..200u64).map(|t| base | t).collect())
            })
            .collect();
        let (_, report) = IngestPipeline::new()
            .queue_depth(1)
            .observer(Arc::clone(&telemetry) as Arc<dyn PipelineObserver>)
            .build(RamboParams::flat(8, 3, 1 << 12, 2, 5), docs)
            .unwrap();
        assert_eq!(telemetry.producer_stalls().count(), report.producer_stalls);
        assert_eq!(telemetry.writer_stalls().count(), report.writer_stalls);
        assert_eq!(telemetry.depth_high_water(), report.max_queue_depth);
        // Stall durations in the histograms sum to roughly the report's
        // nanosecond totals (histogram buckets quote upper bounds, so the
        // histogram mean·count can only over-report, within 12.5%).
        if report.writer_stalls > 0 {
            let hist_total = telemetry.writer_stalls().mean().as_nanos() as u64
                * telemetry.writer_stalls().count();
            assert!(hist_total * 10 >= report.writer_stall_ns * 9);
        }
        telemetry.clear();
        assert_eq!(telemetry.producer_stalls().count(), 0);
        assert_eq!(telemetry.depth_high_water(), 0);
    }
}
