//! Fixed-width table rendering so harness binaries print rows shaped like
//! the paper's tables (and EXPERIMENTS.md can embed them verbatim).

/// A simple left-aligned text table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with a title line and column headers.
    #[must_use]
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            title: title.into(),
            headers: headers.iter().map(ToString::to_string).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (padded/truncated to the header width).
    pub fn row(&mut self, cells: &[String]) {
        let mut row: Vec<String> = cells.to_vec();
        row.resize(self.headers.len(), String::new());
        row.truncate(self.headers.len());
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no rows have been added.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render to a string (also what `Display` prints).
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let mut out = String::new();
        out.push_str("== ");
        out.push_str(&self.title);
        out.push_str(" ==\n");
        let fmt_row = |cells: &[String], widths: &[usize]| {
            let mut line = String::new();
            for (c, cell) in cells.iter().enumerate() {
                if c > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{cell:<width$}", width = widths[c]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Table 2: demo", &["#files", "RAMBO", "COBS"]);
        t.row(&["100".into(), "0.018".into(), "0.19".into()]);
        t.row(&["2000".into(), "0.191".into(), "2.72".into()]);
        let s = t.render();
        assert!(s.contains("Table 2: demo"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        // Header and rows align: each data line starts at column 0 with the
        // padded #files cell.
        assert!(lines[1].starts_with("#files"));
        assert!(lines[3].starts_with("100 "));
        assert!(lines[4].starts_with("2000"));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn rows_are_padded_and_truncated() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(&["1".into()]);
        t.row(&["1".into(), "2".into(), "3".into()]);
        assert!(t.render().lines().count() == 5);
    }
}
