//! The paper's analytic results as executable formulas (§4 and appendix §7).
//!
//! These are used three ways in this repository: parameter selection in
//! [`crate::RamboBuilder`], predicted-vs-measured comparisons in the Figure 4
//! and Table 2 harnesses, and property tests pinning the qualitative claims
//! (monotonicity, limits) the paper states in prose.

/// Per-BFU false-positive estimate `(1 − e^{−ηn/m})^η` (§2.1). Re-exported
/// from the bloom crate for convenience.
#[must_use]
pub fn bfu_fpr(m_bits: usize, n_keys: usize, eta: u32) -> f64 {
    rambo_bloom::params::expected_fpr(m_bits, n_keys, eta)
}

/// **Lemma 4.1** — per-document false-positive rate.
///
/// With per-BFU FPR `p`, `B` buckets, `R` repetitions, and a query term
/// present in at most `v` documents, the probability of wrongly reporting a
/// specific non-containing document is
/// `F_p = (p·(1−1/B)^V + 1 − (1−1/B)^V)^R`: in each repetition the
/// document's bucket must either collide with a true document's bucket
/// (`1 − (1−1/B)^V`) or its BFU must fail (`p`, conditioned on no
/// collision).
///
/// # Panics
/// Panics unless `0 ≤ p ≤ 1` and `b ≥ 1`.
#[must_use]
pub fn per_doc_fpr(p: f64, b: u64, v: u32, r: usize) -> f64 {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    assert!(b >= 1, "need at least one bucket");
    let clean = (1.0 - 1.0 / b as f64).powi(v as i32);
    (p * clean + (1.0 - clean)).powi(r as i32)
}

/// **Lemma 4.2** — overall false-positive bound over all `K` documents
/// (union bound over Lemma 4.1): `δ ≤ K·(1 − (1−p)(1−1/B)^V)^R`.
#[must_use]
pub fn overall_fpr_bound(k: usize, p: f64, b: u64, v: u32, r: usize) -> f64 {
    (k as f64 * per_doc_fpr(p, b, v, r)).min(1.0)
}

/// **Theorem 4.3** — repetitions needed for a target overall FPR `δ`:
/// `R = O(log K − log δ)`. This is the paper's simplified form
/// `⌈ln K − ln δ⌉` (base-e; assumes the per-repetition survival factor is at
/// most `1/e`).
///
/// # Panics
/// Panics unless `0 < delta < 1` and `k ≥ 1`.
#[must_use]
pub fn required_repetitions(k: usize, delta: f64) -> usize {
    assert!(k >= 1);
    assert!(delta > 0.0 && delta < 1.0);
    ((k as f64).ln() - delta.ln()).ceil().max(1.0) as usize
}

/// Exact version of Theorem 4.3: the smallest `R` with
/// `K·inner^R ≤ δ`, where `inner = p(1−1/B)^V + 1 − (1−1/B)^V` is the
/// per-repetition survival probability from Lemma 4.1.
///
/// # Panics
/// Panics on out-of-range probabilities or `inner ≥ 1`.
#[must_use]
pub fn required_repetitions_exact(k: usize, delta: f64, p: f64, b: u64, v: u32) -> usize {
    assert!(delta > 0.0 && delta < 1.0);
    let clean = (1.0 - 1.0 / b as f64).powi(v as i32);
    let inner = p * clean + (1.0 - clean);
    assert!(
        inner < 1.0,
        "per-repetition survival must be < 1 (p={p}, B={b}, V={v})"
    );
    ((delta.ln() - (k as f64).ln()) / inner.ln())
        .ceil()
        .max(1.0) as usize
}

/// **Lemma 4.4** — expected query time (in abstract "operations"):
/// `E[q_t] ≤ B·R·η + (K/B)·(V + B·p)·R`. The first term prices the BFU
/// probes, the second the union/intersection work over expected survivors.
#[must_use]
pub fn expected_query_ops(b: u64, r: usize, eta: u32, k: usize, v: u32, p: f64) -> f64 {
    let probes = b as f64 * r as f64 * f64::from(eta);
    let merge = (k as f64 / b as f64) * (f64::from(v) + b as f64 * p) * r as f64;
    probes + merge
}

/// The bucket count minimizing Lemma 4.4: `B = √(K·V/η)` (from
/// `∇_B E[q_t] = 0`, §4.2). Clamped to at least 2.
#[must_use]
pub fn optimal_buckets(k: usize, v: u32, eta: u32) -> u64 {
    (((k as f64 * f64::from(v)) / f64::from(eta)).sqrt().round() as u64).max(2)
}

/// **Theorem 4.5** — the headline complexity `O(√K(log K − log δ))`,
/// returned as the concrete operation count at the optimal `B` and the
/// simplified `R`.
#[must_use]
pub fn theorem_query_ops(k: usize, delta: f64, v: u32, eta: u32, p: f64) -> f64 {
    let b = optimal_buckets(k, v, eta);
    let r = required_repetitions(k, delta);
    expected_query_ops(b, r, eta, k, v, p)
}

/// **Lemma 4.6's Γ** — the deduplication factor: expected *distinct*
/// `(term, bucket)` insertions per repetition divided by total insertions
/// `Σ|S|`, for terms of uniform multiplicity `V`:
/// `Γ = (B/V)·(1 − (1−1/B)^V)`.
///
/// Satisfies the paper's claims: `Γ = 1` at `V = 1`; `Γ < 1` for `V > 1`;
/// `Γ → 1` as `B → ∞` (one filter per set). Note the paper's printed sum
/// (`Σ_v (1/v)(B−1)^{V−2v+1}/B^{V−1}`) contains a typo — see
/// [`gamma_paper`] and DESIGN.md.
///
/// # Panics
/// Panics if `b < 1` or `v < 1`.
#[must_use]
pub fn gamma(b: u64, v: u32) -> f64 {
    assert!(b >= 1 && v >= 1);
    let bf = b as f64;
    (bf / f64::from(v)) * (1.0 - (1.0 - 1.0 / bf).powi(v as i32))
}

/// The paper's *literal* Γ formula from the appendix:
/// `Σ_{v=1}^{V} (1/v)·(B−1)^{V−2v+1}/B^{V−1}`. Reproduced verbatim for
/// comparison; for `v > (V+1)/2` the exponent goes negative, which is the
/// typo documented in DESIGN.md.
#[must_use]
pub fn gamma_paper(b: u64, v_max: u32) -> f64 {
    let bf = b as f64;
    (1..=v_max)
        .map(|v| {
            let exp = i32::try_from(v_max).unwrap() - 2 * v as i32 + 1;
            (1.0 / f64::from(v)) * (bf - 1.0).powi(exp) / bf.powi(v_max as i32 - 1)
        })
        .sum()
}

/// **Lemma 4.6** — expected index size in bits:
/// `R · Γ · Σ|S| · log₂(1/p) / ln 2` (optimal Bloom bits per distinct key,
/// times distinct insertions per repetition, times repetitions). With
/// `R = O(log K)` this is the paper's `Γ·log K·log(1/p)·Σ|S|` up to the
/// `ln 2` constants it absorbs.
///
/// # Panics
/// Panics unless `0 < p < 1`.
#[must_use]
pub fn expected_memory_bits(total_insertions: u64, v: u32, b: u64, r: usize, p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    let bits_per_key = -p.log2() / std::f64::consts::LN_2;
    r as f64 * gamma(b, v) * total_insertions as f64 * bits_per_key
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_doc_fpr_limits() {
        // R=1, V=0 (term in no document): only the Bloom failure remains.
        assert!((per_doc_fpr(0.01, 100, 0, 1) - 0.01).abs() < 1e-12);
        // p=0: pure bucket-collision term.
        let b = 50u64;
        let expect = 1.0 - (1.0 - 1.0 / 50.0f64).powi(3);
        assert!((per_doc_fpr(0.0, b, 3, 1) - expect).abs() < 1e-12);
        // More repetitions always help.
        assert!(per_doc_fpr(0.01, 50, 2, 3) < per_doc_fpr(0.01, 50, 2, 2));
        // Higher multiplicity always hurts.
        assert!(per_doc_fpr(0.01, 50, 8, 2) > per_doc_fpr(0.01, 50, 2, 2));
    }

    #[test]
    fn overall_bound_scales_with_k_and_caps_at_one() {
        let a = overall_fpr_bound(100, 0.01, 50, 2, 3);
        let b = overall_fpr_bound(200, 0.01, 50, 2, 3);
        assert!((b / a - 2.0).abs() < 1e-9);
        assert_eq!(overall_fpr_bound(1_000_000, 0.5, 2, 50, 1), 1.0);
    }

    #[test]
    fn repetitions_grow_logarithmically() {
        let r100 = required_repetitions(100, 0.01);
        let r10k = required_repetitions(10_000, 0.01);
        // ln(10000/100) ≈ 4.6 more repetitions.
        assert!((4..=5).contains(&(r10k - r100)));
        assert_eq!(required_repetitions(1, 0.5), 1);
    }

    #[test]
    fn exact_repetitions_achieve_the_bound() {
        let (k, delta, p, b, v) = (1000usize, 0.01, 0.01, 60u64, 4u32);
        let r = required_repetitions_exact(k, delta, p, b, v);
        assert!(overall_fpr_bound(k, p, b, v, r) <= delta * 1.0001);
        if r > 1 {
            assert!(overall_fpr_bound(k, p, b, v, r - 1) > delta);
        }
    }

    #[test]
    fn optimal_b_is_sqrt_shaped() {
        assert_eq!(optimal_buckets(100, 1, 1), 10);
        assert_eq!(optimal_buckets(10_000, 1, 1), 100);
        // 4x K → 2x B.
        let b1 = optimal_buckets(2_500, 4, 2);
        let b2 = optimal_buckets(10_000, 4, 2);
        assert!((f64::from(b2 as u32) / f64::from(b1 as u32) - 2.0).abs() < 0.1);
    }

    #[test]
    fn query_ops_minimized_near_optimal_b() {
        let (k, v, eta, p, r) = (10_000usize, 2u32, 2u32, 0.01, 3usize);
        let b_opt = optimal_buckets(k, v, eta);
        let at_opt = expected_query_ops(b_opt, r, eta, k, v, p);
        for factor in [4u64, 8] {
            assert!(expected_query_ops(b_opt * factor, r, eta, k, v, p) > at_opt);
            assert!(expected_query_ops((b_opt / factor).max(2), r, eta, k, v, p) > at_opt);
        }
    }

    #[test]
    fn theorem_scaling_is_sublinear() {
        // Doubling K should grow cost by ≈ √2 (log factor is mild), far
        // below 2x (the COBS scaling).
        let c1 = theorem_query_ops(10_000, 0.01, 2, 2, 0.01);
        let c2 = theorem_query_ops(40_000, 0.01, 2, 2, 0.01);
        let ratio = c2 / c1;
        assert!(
            ratio < 3.0,
            "4x documents must cost well under 4x (got {ratio:.2}x)"
        );
        assert!(ratio > 1.5, "cost must still grow with K (got {ratio:.2}x)");
    }

    #[test]
    fn gamma_limits_and_monotonicity() {
        // V = 1: no duplicates to merge, Γ = 1 exactly.
        assert!((gamma(64, 1) - 1.0).abs() < 1e-12);
        // V > 1 with B < ∞: Γ < 1 (the paper's claim).
        assert!(gamma(64, 2) < 1.0);
        assert!(gamma(64, 16) < gamma(64, 2));
        // B → large: Γ → 1.
        assert!(gamma(1 << 30, 4) > 0.999_999);
        // B = 1: everything merges into one bucket, Γ = 1/V.
        assert!((gamma(1, 8) - 1.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn gamma_matches_monte_carlo() {
        // Balls-in-bins simulation: T terms × V docs hashed into B buckets.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let (b, v, t) = (32u64, 6u32, 20_000u32);
        let mut rng = StdRng::seed_from_u64(42);
        let mut distinct = 0u64;
        for _ in 0..t {
            let mut buckets = std::collections::HashSet::new();
            for _ in 0..v {
                buckets.insert(rng.gen_range(0..b));
            }
            distinct += buckets.len() as u64;
        }
        let measured = distinct as f64 / (f64::from(t) * f64::from(v));
        let predicted = gamma(b, v);
        assert!(
            (measured - predicted).abs() < 0.01,
            "Monte-Carlo Γ {measured:.4} vs predicted {predicted:.4}"
        );
    }

    #[test]
    fn gamma_paper_agrees_at_v1_and_diverges_after() {
        // At V=1 the printed formula is correct (Γ = 1)…
        assert!((gamma_paper(64, 1) - 1.0).abs() < 1e-12);
        // …and both agree B→∞-ish at V=1 only; for V=2 the printed formula
        // still tracks loosely at large B (the typo term vanishes as 1/B²).
        let delta = (gamma_paper(1 << 20, 2) - gamma(1 << 20, 2)).abs();
        assert!(delta < 1e-3, "large-B agreement broken: {delta}");
    }

    #[test]
    fn memory_decreases_with_multiplicity_and_grows_with_r() {
        let n = 1_000_000u64;
        let base = expected_memory_bits(n, 1, 100, 3, 0.01);
        assert!(expected_memory_bits(n, 8, 100, 3, 0.01) < base);
        assert!(expected_memory_bits(n, 1, 100, 6, 0.01) > base);
        // V=1, R=1: plain optimal Bloom size n·log2(1/p)/ln2.
        let plain = expected_memory_bits(n, 1, 100, 1, 0.01);
        let expect = n as f64 * (-(0.01f64).log2()) / std::f64::consts::LN_2;
        assert!((plain - expect).abs() / expect < 1e-9);
    }
}
