//! Pipelined, shard-parallel ingestion (the paper's §5.3 construction story
//! at full depth).
//!
//! The batch engine ([`Rambo::insert_document_batch`]) amortizes hashing
//! *within* one document but is strictly synchronous across documents: the
//! caller parses document *n+1* only after every bit of document *n* has been
//! written. The paper's headline — 170TB indexed in 14 hours — rests on the
//! observation that construction is embarrassingly parallel at *every* level,
//! so this module decomposes ingestion into its two independent halves and
//! recomposes them two ways:
//!
//! * **Hash/write split.** [`HashPlan::hash_document`] turns a raw term set
//!   into a [`HashedDoc`] — per-repetition blocks of matrix rows, sorted
//!   when the table is big enough for the batch engine's row-sorted sweep
//!   to pay (same threshold, same policy) — using nothing but the index's
//!   Bloom seeds, so it can run on any thread without touching the index.
//!   [`Rambo::apply_hashed`] replays such a block through
//!   the matrix row sweep.
//!   The split is lossless: bit-setting is idempotent and commutative, so
//!   hash-then-apply is **bit-identical** to the in-place batch path (pinned
//!   by the property suite via full `PartialEq`).
//!
//! * **Pipeline** ([`IngestPipeline::ingest`]). A bounded-queue two-stage
//!   pipeline: the *calling thread* parses and hashes document *n+1* while a
//!   dedicated writer thread applies document *n*'s bucket writes. With
//!   `hash_workers > 1` the hash stage widens into a pool pulling documents
//!   from a shared queue (idle workers steal whatever arrives next), and the
//!   writer re-sequences completions so document ids still match arrival
//!   order. Stall time on either side of the queue is counted — a saturated
//!   queue means the writer is the bottleneck, an empty one means parsing
//!   is — and surfaced through [`PipelineReport`] plus an optional
//!   [`PipelineObserver`] (e.g. `rambo_workloads`' latency histograms).
//!
//! * **Shard-parallel builds** ([`IngestPipeline::build_sharded`]). The
//!   document set is dealt round-robin across `S` workers, each building a
//!   private partial index with the *same seed*; partials are then folded
//!   into the final [`Rambo`] by OR-ing their matrices — the same argument
//!   that makes [`crate::sharded`]'s `stack()` exact: with shared hashes the
//!   final bits are a union over documents, independent of which worker set
//!   them or in what order. The merge re-registers names in original input
//!   order, so document ids, bucket lists and insert accounting are also
//!   **bit-identical** to a sequential build.
//!
//! Both paths compose with everything downstream (fold-over, serialization,
//! the serving catalog) because they produce literally the same structure.

use crate::batch::dedupe_terms;
use crate::error::RamboError;
use crate::index::{DocId, Rambo};
use crate::params::RamboParams;
use rambo_hash::HashPair;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Fingerprint of a seed vector, carried by every [`HashedDoc`] so
/// [`Rambo::apply_hashed`] can reject blocks hashed under a different seed
/// (same geometry, different seeds would silently set wrong bits — a false
/// negative, not an error, without this check).
fn seed_tag(seeds: &[u64]) -> u64 {
    seeds.iter().fold(0x9E37_79B9_7F4A_7C15, |acc, &s| {
        acc.rotate_left(7) ^ s.wrapping_mul(0xFF51_AFD7_ED55_8CCD)
    })
}

/// Everything needed to hash a document's terms into matrix-row blocks
/// without touching the index: the per-repetition Bloom seeds and the filter
/// geometry. Cheap to clone; obtained from [`Rambo::hash_plan`].
#[derive(Debug, Clone)]
pub struct HashPlan {
    seed_tag: u64,
    seeds: Vec<u64>,
    eta: u32,
    m: u64,
    /// Sort each repetition's row block? Worth it only for tables past the
    /// last-level cache (same policy as the batch engine's
    /// [`crate::batch::ROW_SORT_MIN_BYTES`]): a sorted block turns the write
    /// stage into a prefetchable sequential sweep, but on a cache-resident
    /// matrix the sort costs more than it saves.
    sort_rows: bool,
}

impl Rambo {
    /// The hash plan of this index — hand it to producer/hash threads so
    /// they can run [`HashPlan::hash_document`] while the index itself is
    /// exclusively owned by the write stage.
    #[must_use]
    pub fn hash_plan(&self) -> HashPlan {
        // Same size the batch engine compares against ROW_SORT_MIN_BYTES, so
        // the "same threshold, same policy" contract can't drift.
        let table_bytes = self.tables[0].matrix.size_bytes();
        HashPlan {
            seed_tag: seed_tag(&self.bloom_seeds),
            seeds: self.bloom_seeds.clone(),
            eta: self.params().eta,
            m: self.params().bfu_bits as u64,
            sort_rows: table_bytes >= crate::batch::ROW_SORT_MIN_BYTES,
        }
    }

    /// Apply one hashed document: register the name and replay each
    /// repetition's row block through the matrix row sweep. Produces
    /// exactly the bits (and insert accounting) that
    /// [`Rambo::insert_document_batch`] would for the same raw terms.
    ///
    /// # Errors
    /// [`RamboError::DuplicateDocument`] when the name is already indexed;
    /// [`RamboError::InvalidParams`] when the block came from a
    /// [`HashPlan`] of a different geometry (filter size, `η`, repetition
    /// count) or a different Bloom-seed family — a mismatched plan would
    /// otherwise set wrong bits (or index out of bounds) and silently void
    /// the zero-false-negative guarantee.
    pub fn apply_hashed(&mut self, doc: &HashedDoc) -> Result<DocId, RamboError> {
        if doc.m != self.params().bfu_bits as u64 || doc.eta != self.params().eta {
            return Err(RamboError::InvalidParams(format!(
                "hashed block was built for m={} η={}, index has m={} η={}",
                doc.m,
                doc.eta,
                self.params().bfu_bits,
                self.params().eta
            )));
        }
        if doc.seed_tag != seed_tag(&self.bloom_seeds) {
            return Err(RamboError::InvalidParams(
                "hashed block was built with different Bloom seeds than this index".into(),
            ));
        }
        // Empty documents hash to empty blocks in every repetition, so their
        // block count is indistinguishable — and any count is correct.
        if doc.per_rep != 0 && doc.rows.len() / doc.per_rep != self.repetitions() {
            return Err(RamboError::InvalidParams(format!(
                "hashed block has {} repetitions, index has {}",
                doc.rows.len() / doc.per_rep,
                self.repetitions()
            )));
        }
        let id = self.add_document(&doc.name)?;
        for (rep, table) in self.tables.iter_mut().enumerate() {
            let bucket = table.assign[id as usize] as usize;
            table.matrix.set_rows(bucket, doc.rep_rows(rep));
        }
        self.inserts += doc.term_count;
        Ok(id)
    }
}

impl HashPlan {
    /// Hash a document's term set: dedupe once, then derive each unique
    /// term's `η` filter positions per repetition — sorting each
    /// repetition's block when the table is large enough that the write
    /// stage's monotone sweep pays for it. This is the CPU-heavy half of
    /// ingestion and needs no access to the index.
    #[must_use]
    pub fn hash_document(&self, name: &str, terms: &[u64]) -> HashedDoc {
        let mut scratch = Vec::new();
        let unique = dedupe_terms(terms, &mut scratch);
        let per_rep = unique.len() * self.eta as usize;
        let mut rows = Vec::with_capacity(per_rep * self.seeds.len());
        for &seed in &self.seeds {
            let start = rows.len();
            for &t in unique {
                let pair = HashPair::of_u64(t, seed);
                for i in 0..self.eta {
                    rows.push(pair.index(i, self.m) as usize);
                }
            }
            if self.sort_rows {
                rows[start..].sort_unstable();
            }
        }
        HashedDoc {
            name: name.to_string(),
            term_count: terms.len() as u64,
            per_rep,
            rows,
            m: self.m,
            eta: self.eta,
            seed_tag: self.seed_tag,
        }
    }
}

/// One document, fully hashed: `R` consecutive blocks of sorted matrix rows
/// (one per repetition), ready for [`Rambo::apply_hashed`]. This is the unit
/// that flows through the pipeline queue.
#[derive(Debug, Clone)]
pub struct HashedDoc {
    name: String,
    /// Raw term count *with multiplicity* (drives `total_inserts`, exactly
    /// like the batch engine's accounting).
    term_count: u64,
    /// Rows per repetition block (`unique_terms × η`).
    per_rep: usize,
    /// `R · per_rep` rows, repetition-major (blocks sorted ascending when
    /// the plan's table size warrants the monotone sweep).
    rows: Vec<usize>,
    /// Filter geometry and seed fingerprint the rows were derived for —
    /// checked by [`Rambo::apply_hashed`] so a plan from one index cannot
    /// corrupt another.
    m: u64,
    eta: u32,
    seed_tag: u64,
}

impl HashedDoc {
    /// Document name carried through the pipeline.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    fn rep_rows(&self, rep: usize) -> &[usize] {
        if self.per_rep == 0 {
            &[]
        } else {
            &self.rows[rep * self.per_rep..(rep + 1) * self.per_rep]
        }
    }
}

/// Observer hooks for pipeline telemetry. All methods default to no-ops;
/// implementations must be cheap — they run on the hot path. See
/// `rambo_workloads`' `QueueTelemetry` for a histogram-backed implementation.
pub trait PipelineObserver: Send + Sync {
    /// The producer blocked this long on a full queue (writer is the
    /// bottleneck).
    fn producer_stall(&self, waited: Duration) {
        let _ = waited;
    }
    /// The writer blocked this long on an empty queue (parse/hash is the
    /// bottleneck).
    fn writer_stall(&self, waited: Duration) {
        let _ = waited;
    }
    /// Queue depth observed right after a document was enqueued.
    fn queue_depth(&self, depth: usize) {
        let _ = depth;
    }
}

/// What one pipeline run did, including where it stalled. Counters are
/// exact; durations are wall-clock sums over blocking waits.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineReport {
    /// Documents ingested.
    pub docs: u64,
    /// Terms ingested (with multiplicity).
    pub terms: u64,
    /// Times the producer found the queue full and had to block.
    pub producer_stalls: u64,
    /// Total nanoseconds the producer spent blocked on a full queue.
    pub producer_stall_ns: u64,
    /// Times the writer found the queue empty and had to block.
    pub writer_stalls: u64,
    /// Total nanoseconds the writer spent blocked on an empty queue.
    pub writer_stall_ns: u64,
    /// High-water mark of documents in flight between producer and writer.
    /// Can exceed the configured queue depth: a document blocked in `send`
    /// counts, and in pooled mode so do documents being hashed or waiting
    /// in the resequencing buffer (the bound is then roughly
    /// `2·queue_depth + hash_workers`).
    pub max_queue_depth: u64,
    /// Worker shards used (1 for the plain pipeline).
    pub shards: u64,
}

/// Shared atomic counters behind a [`PipelineReport`].
#[derive(Default)]
struct Counters {
    docs: AtomicU64,
    terms: AtomicU64,
    producer_stalls: AtomicU64,
    producer_stall_ns: AtomicU64,
    writer_stalls: AtomicU64,
    writer_stall_ns: AtomicU64,
    depth: AtomicU64,
    max_depth: AtomicU64,
}

impl Counters {
    fn report(&self, shards: u64) -> PipelineReport {
        PipelineReport {
            docs: self.docs.load(Ordering::Relaxed),
            terms: self.terms.load(Ordering::Relaxed),
            producer_stalls: self.producer_stalls.load(Ordering::Relaxed),
            producer_stall_ns: self.producer_stall_ns.load(Ordering::Relaxed),
            writer_stalls: self.writer_stalls.load(Ordering::Relaxed),
            writer_stall_ns: self.writer_stall_ns.load(Ordering::Relaxed),
            max_queue_depth: self.max_depth.load(Ordering::Relaxed),
            shards,
        }
    }

    /// Depth++ (before enqueue); returns the new depth for observers.
    fn enqueued(&self) -> u64 {
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.max_depth.fetch_max(d, Ordering::Relaxed);
        d
    }

    fn dequeued(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Configuration for pipelined / sharded ingestion. The defaults (queue
/// depth 4, one hash worker) give the strict two-stage parse+hash ∥ write
/// overlap; widen `hash_workers` when hashing, not writing, dominates.
#[derive(Clone)]
pub struct IngestPipeline {
    queue_depth: usize,
    hash_workers: usize,
    observer: Option<Arc<dyn PipelineObserver>>,
}

impl Default for IngestPipeline {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for IngestPipeline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngestPipeline")
            .field("queue_depth", &self.queue_depth)
            .field("hash_workers", &self.hash_workers)
            .field("observer", &self.observer.is_some())
            .finish()
    }
}

impl IngestPipeline {
    /// Defaults: bounded queue of 4 hashed documents, single hash worker
    /// (the calling thread), no observer.
    #[must_use]
    pub fn new() -> Self {
        Self {
            queue_depth: 4,
            hash_workers: 1,
            observer: None,
        }
    }

    /// Bound on hashed-but-unwritten documents in flight (clamped to ≥ 1).
    /// Deeper queues absorb burstier stage-time variance at the cost of
    /// memory (roughly `depth × unique_terms × η × R × 8` bytes).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Number of hash-stage workers. `1` keeps hashing on the calling
    /// thread (two-stage pipeline); `n > 1` spawns a pool pulling documents
    /// from a shared queue, with the writer re-sequencing completions so
    /// document ids still follow arrival order.
    #[must_use]
    pub fn hash_workers(mut self, workers: usize) -> Self {
        self.hash_workers = workers.max(1);
        self
    }

    /// Attach a telemetry observer (stall durations, queue depths).
    #[must_use]
    pub fn observer(mut self, obs: Arc<dyn PipelineObserver>) -> Self {
        self.observer = Some(obs);
        self
    }

    fn observe_producer_stall(&self, counters: &Counters, waited: Duration) {
        counters.producer_stalls.fetch_add(1, Ordering::Relaxed);
        counters
            .producer_stall_ns
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        if let Some(obs) = &self.observer {
            obs.producer_stall(waited);
        }
    }

    fn observe_writer_stall(&self, counters: &Counters, waited: Duration) {
        counters.writer_stalls.fetch_add(1, Ordering::Relaxed);
        counters
            .writer_stall_ns
            .fetch_add(waited.as_nanos() as u64, Ordering::Relaxed);
        if let Some(obs) = &self.observer {
            obs.writer_stall(waited);
        }
    }

    /// Pipeline a document stream into an existing index. Bit-identical to
    /// calling [`Rambo::insert_document_batch`] per document in stream
    /// order, but the parse+hash of document *n+1* overlaps the bucket
    /// writes of document *n*.
    ///
    /// # Errors
    /// Propagates the writer's first index error (duplicate names, …);
    /// documents applied before the failure remain in the index, documents
    /// still in flight are dropped.
    ///
    /// # Panics
    /// Panics if a pipeline thread panics.
    pub fn ingest(
        &self,
        index: &mut Rambo,
        docs: impl IntoIterator<Item = (String, Vec<u64>)>,
    ) -> Result<PipelineReport, RamboError> {
        let plan = index.hash_plan();
        let counters = Counters::default();
        if self.hash_workers == 1 {
            self.run_two_stage(index, &plan, &counters, docs)?;
        } else {
            self.run_pooled(index, &plan, &counters, docs)?;
        }
        Ok(counters.report(1))
    }

    /// Build a fresh index by pipelining a document stream.
    ///
    /// # Errors
    /// Invalid params, or any [`IngestPipeline::ingest`] failure.
    pub fn build(
        &self,
        params: RamboParams,
        docs: impl IntoIterator<Item = (String, Vec<u64>)>,
    ) -> Result<(Rambo, PipelineReport), RamboError> {
        let mut index = Rambo::new(params)?;
        let report = self.ingest(&mut index, docs)?;
        Ok((index, report))
    }

    /// Two-stage pipeline: caller thread parses + hashes, a scoped writer
    /// thread applies.
    fn run_two_stage(
        &self,
        index: &mut Rambo,
        plan: &HashPlan,
        counters: &Counters,
        docs: impl IntoIterator<Item = (String, Vec<u64>)>,
    ) -> Result<(), RamboError> {
        std::thread::scope(|scope| {
            let (tx, rx) = std::sync::mpsc::sync_channel::<HashedDoc>(self.queue_depth);
            let writer = scope.spawn(move || -> Result<(), RamboError> {
                loop {
                    let doc = match self.next_hashed(&rx, counters) {
                        Some(d) => d,
                        None => return Ok(()),
                    };
                    counters.dequeued();
                    index.apply_hashed(&doc)?;
                }
            });
            for (name, terms) in docs {
                let hashed = plan.hash_document(&name, &terms);
                counters.docs.fetch_add(1, Ordering::Relaxed);
                counters
                    .terms
                    .fetch_add(terms.len() as u64, Ordering::Relaxed);
                if !self.enqueue(&tx, hashed, counters) {
                    break; // writer hung up: it hit an error
                }
            }
            drop(tx); // close the queue; the writer drains and returns
            writer.join().expect("pipeline writer panicked")
        })
    }

    /// Blocking-with-accounting receive: `try_recv` first so an already-full
    /// queue costs nothing, then a timed blocking `recv` counted as a writer
    /// stall. `None` means the channel closed (end of stream).
    fn next_hashed<T>(&self, rx: &Receiver<T>, counters: &Counters) -> Option<T> {
        match rx.try_recv() {
            Ok(d) => Some(d),
            Err(TryRecvError::Disconnected) => None,
            Err(TryRecvError::Empty) => {
                let t0 = Instant::now();
                let got = rx.recv();
                self.observe_writer_stall(counters, t0.elapsed());
                got.ok()
            }
        }
    }

    /// Non-blocking-first send with stall accounting. Returns `false` when
    /// the consumer hung up (error downstream).
    fn enqueue<T>(&self, tx: &SyncSender<T>, item: T, counters: &Counters) -> bool {
        let depth = counters.enqueued();
        if let Some(obs) = &self.observer {
            obs.queue_depth(depth as usize);
        }
        match tx.try_send(item) {
            Ok(()) => true,
            Err(TrySendError::Disconnected(_)) => {
                counters.dequeued();
                false
            }
            Err(TrySendError::Full(item)) => {
                let t0 = Instant::now();
                let sent = tx.send(item).is_ok();
                self.observe_producer_stall(counters, t0.elapsed());
                if !sent {
                    counters.dequeued();
                }
                sent
            }
        }
    }

    /// Three-stage pipeline: caller thread parses, `hash_workers` pull raw
    /// documents from a shared queue and hash them, the writer re-sequences
    /// and applies in arrival order.
    fn run_pooled(
        &self,
        index: &mut Rambo,
        plan: &HashPlan,
        counters: &Counters,
        docs: impl IntoIterator<Item = (String, Vec<u64>)>,
    ) -> Result<(), RamboError> {
        type Raw = (u64, String, Vec<u64>);
        std::thread::scope(|scope| {
            let (raw_tx, raw_rx) = std::sync::mpsc::sync_channel::<Raw>(self.queue_depth);
            // `Receiver` is single-consumer; the pool shares it behind a
            // mutex — an idle worker grabs whatever document arrives next,
            // which is exactly the work-stealing discipline we want (no
            // per-worker queues to go idle behind a straggler).
            let raw_rx = Arc::new(Mutex::new(raw_rx));
            let (done_tx, done_rx) =
                std::sync::mpsc::sync_channel::<(u64, HashedDoc)>(self.queue_depth);
            for _ in 0..self.hash_workers {
                let raw_rx = Arc::clone(&raw_rx);
                let done_tx = done_tx.clone();
                let plan = plan.clone();
                scope.spawn(move || {
                    loop {
                        // Hold the lock only for the dequeue, not the hash.
                        let msg = raw_rx.lock().expect("hash queue poisoned").recv();
                        let Ok((seq, name, terms)) = msg else { return };
                        let hashed = plan.hash_document(&name, &terms);
                        if done_tx.send((seq, hashed)).is_err() {
                            return; // writer hung up on error
                        }
                    }
                });
            }
            drop(done_tx); // writers' clones keep the channel alive
            let writer = scope.spawn(move || -> Result<(), RamboError> {
                // Completions arrive hash-pool-ordered; re-sequence so the
                // registry issues ids in arrival order (bit-identity with
                // the sequential build). The buffer is bounded by the two
                // queue depths plus the pool width.
                let mut pending: BTreeMap<u64, HashedDoc> = BTreeMap::new();
                let mut next_seq = 0u64;
                loop {
                    let Some((seq, doc)) = self.next_hashed(&done_rx, counters) else {
                        debug_assert!(pending.is_empty(), "stream ended with holes");
                        return Ok(());
                    };
                    pending.insert(seq, doc);
                    while let Some(doc) = pending.remove(&next_seq) {
                        counters.dequeued();
                        index.apply_hashed(&doc)?;
                        next_seq += 1;
                    }
                }
            });
            for (seq, (name, terms)) in (0u64..).zip(docs) {
                counters.docs.fetch_add(1, Ordering::Relaxed);
                counters
                    .terms
                    .fetch_add(terms.len() as u64, Ordering::Relaxed);
                if !self.enqueue(&raw_tx, (seq, name, terms), counters) {
                    break;
                }
            }
            drop(raw_tx);
            writer.join().expect("pipeline writer panicked")
        })
    }

    /// Shard-parallel build: deal `docs` round-robin across `shards`
    /// workers, each building a private partial index with the same seed
    /// through the hash/write split, then fold the partials into one final
    /// index — **bit-identical** to a sequential
    /// [`Rambo::insert_document_batch`] build over `docs` in order (the
    /// document-level counterpart of [`crate::sharded`]'s node-level
    /// `stack()`).
    ///
    /// With `shards > 1` each worker interleaves hash and apply directly —
    /// there is no queue, so `queue_depth`, `hash_workers` and the observer
    /// do not apply and the returned report carries only document/term/
    /// shard counts (stall counters are structurally zero). `shards == 1`
    /// degenerates to [`IngestPipeline::build`], which honors all of them.
    /// (Per-shard inner pipelines are a ROADMAP follow-on.)
    ///
    /// # Errors
    /// Invalid params, duplicate document names, or any worker failure.
    ///
    /// # Panics
    /// Panics if a worker thread panics.
    pub fn build_sharded(
        &self,
        params: RamboParams,
        docs: &[(String, Vec<u64>)],
        shards: usize,
    ) -> Result<(Rambo, PipelineReport), RamboError> {
        let shards = shards.max(1);
        if shards == 1 {
            let (index, mut report) = self.build(params, docs.iter().cloned())?;
            report.shards = 1;
            return Ok((index, report));
        }
        // Phase 1: private partial builds, one worker per shard. Workers
        // never touch shared state — same-seed hashes make the final bits a
        // union over documents regardless of who wrote them.
        let partials: Vec<Rambo> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    scope.spawn(move || -> Result<Rambo, RamboError> {
                        let mut part = Rambo::new(params)?;
                        let plan = part.hash_plan();
                        for (name, terms) in docs.iter().skip(s).step_by(shards) {
                            let hashed = plan.hash_document(name, terms);
                            part.apply_hashed(&hashed)?;
                        }
                        Ok(part)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect::<Result<Vec<_>, _>>()
        })?;
        // Phase 2: fold the partials into the final index. Names are
        // re-registered in original input order (rebuilding the id-ordered
        // registry, assignments and bucket lists exactly as a sequential
        // build would), then each repetition's matrices are OR-merged.
        let mut out = Rambo::new(params)?;
        for (name, _) in docs {
            out.add_document(name)?;
        }
        for part in &partials {
            for (dst, src) in out.tables.iter_mut().zip(&part.tables) {
                dst.matrix.merge_or(&src.matrix);
            }
            out.inserts += part.inserts;
        }
        let mut report = PipelineReport {
            shards: shards as u64,
            ..PipelineReport::default()
        };
        report.docs = docs.len() as u64;
        report.terms = docs.iter().map(|(_, t)| t.len() as u64).sum();
        Ok((out, report))
    }
}

impl PipelineReport {
    /// Producer stall time as a `Duration`.
    #[must_use]
    pub fn producer_stall(&self) -> Duration {
        Duration::from_nanos(self.producer_stall_ns)
    }

    /// Writer stall time as a `Duration`.
    #[must_use]
    pub fn writer_stall(&self) -> Duration {
        Duration::from_nanos(self.writer_stall_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::QueryMode;
    use std::sync::atomic::AtomicUsize;

    fn params(seed: u64) -> RamboParams {
        RamboParams::flat(8, 3, 1 << 12, 2, seed)
    }

    fn archive(k: usize, terms_per_doc: usize) -> Vec<(String, Vec<u64>)> {
        (0..k)
            .map(|d| {
                let base = (d as u64) << 32;
                let mut ts: Vec<u64> = (0..terms_per_doc as u64).map(|t| base | t).collect();
                ts.push(0xFFFF); // shared term
                ts.push(base); // duplicate
                (format!("doc-{d}"), ts)
            })
            .collect()
    }

    fn sequential(p: RamboParams, docs: &[(String, Vec<u64>)]) -> Rambo {
        let mut r = Rambo::new(p).unwrap();
        for (name, terms) in docs {
            r.insert_document_batch_with(name, terms, 1).unwrap();
        }
        r
    }

    #[test]
    fn hash_apply_split_is_bit_identical() {
        let docs = archive(20, 50);
        let reference = sequential(params(3), &docs);
        let mut split = Rambo::new(params(3)).unwrap();
        let plan = split.hash_plan();
        for (name, terms) in &docs {
            let hashed = plan.hash_document(name, terms);
            split.apply_hashed(&hashed).unwrap();
        }
        assert_eq!(reference, split);
        assert_eq!(reference.total_inserts(), split.total_inserts());
    }

    #[test]
    fn pipelined_build_is_bit_identical() {
        let docs = archive(25, 40);
        let reference = sequential(params(7), &docs);
        for depth in [1, 4] {
            let (piped, report) = IngestPipeline::new()
                .queue_depth(depth)
                .build(params(7), docs.iter().cloned())
                .unwrap();
            assert_eq!(reference, piped, "queue depth {depth}");
            assert_eq!(report.docs, 25);
            assert_eq!(
                report.terms,
                docs.iter().map(|(_, t)| t.len() as u64).sum::<u64>()
            );
            assert!(report.max_queue_depth >= 1);
        }
    }

    #[test]
    fn pooled_hash_workers_preserve_arrival_order() {
        let docs = archive(40, 30);
        let reference = sequential(params(11), &docs);
        for workers in [2, 4] {
            let (piped, report) = IngestPipeline::new()
                .hash_workers(workers)
                .build(params(11), docs.iter().cloned())
                .unwrap();
            assert_eq!(reference, piped, "workers = {workers}");
            assert_eq!(report.docs, 40);
        }
    }

    #[test]
    fn sharded_build_folds_to_bit_identical() {
        let docs = archive(30, 35);
        let reference = sequential(params(13), &docs);
        for shards in [1, 2, 3, 7] {
            let (built, report) = IngestPipeline::new()
                .build_sharded(params(13), &docs, shards)
                .unwrap();
            assert_eq!(reference, built, "shards = {shards}");
            assert_eq!(report.shards, shards as u64);
            assert_eq!(report.docs, 30);
        }
    }

    #[test]
    fn pipeline_into_existing_index_continues_ids() {
        let docs = archive(10, 20);
        let mut idx = Rambo::new(params(5)).unwrap();
        idx.insert_document_batch("pre-existing", &[1, 2, 3])
            .unwrap();
        let report = IngestPipeline::new()
            .ingest(&mut idx, docs.iter().cloned())
            .unwrap();
        assert_eq!(report.docs, 10);
        assert_eq!(idx.num_documents(), 11);
        assert_eq!(idx.document_id("doc-3"), Some(4));
        // Ingested documents answer queries.
        let hits = idx.query_terms_u64(&[0xFFFF], QueryMode::Full);
        assert_eq!(hits.len(), 10);
    }

    #[test]
    fn duplicate_name_error_propagates_and_prior_docs_survive() {
        let docs = vec![
            ("a".to_string(), vec![1u64, 2]),
            ("b".to_string(), vec![3u64]),
            ("a".to_string(), vec![4u64]), // duplicate
            ("c".to_string(), vec![5u64]),
        ];
        let mut idx = Rambo::new(params(9)).unwrap();
        let err = IngestPipeline::new().ingest(&mut idx, docs.clone());
        assert!(matches!(err, Err(RamboError::DuplicateDocument(_))));
        // a and b landed before the failure.
        assert!(idx.num_documents() >= 2);
        assert_eq!(idx.document_id("a"), Some(0));
        assert_eq!(idx.document_id("b"), Some(1));

        let err = IngestPipeline::new()
            .hash_workers(2)
            .ingest(&mut Rambo::new(params(9)).unwrap(), docs.clone());
        assert!(matches!(err, Err(RamboError::DuplicateDocument(_))));

        let err = IngestPipeline::new().build_sharded(params(9), &docs, 2);
        assert!(matches!(err, Err(RamboError::DuplicateDocument(_))));
    }

    #[test]
    fn apply_hashed_rejects_mismatched_geometry() {
        // Repetition-count mismatch.
        let other = Rambo::new(RamboParams::flat(8, 2, 1 << 12, 2, 1)).unwrap();
        let hashed = other.hash_plan().hash_document("x", &[1, 2, 3]);
        let mut idx = Rambo::new(params(1)).unwrap(); // R = 3
        assert!(matches!(
            idx.apply_hashed(&hashed),
            Err(RamboError::InvalidParams(_))
        ));
        // Same R, bigger filter: rows would index out of bounds (or, with a
        // smaller filter, silently set wrong bits) — must error instead.
        let big_m = Rambo::new(RamboParams::flat(8, 3, 1 << 20, 2, 1)).unwrap();
        let hashed = big_m.hash_plan().hash_document("x", &[1, 2, 3]);
        assert!(matches!(
            idx.apply_hashed(&hashed),
            Err(RamboError::InvalidParams(_))
        ));
        // Same R and m, different η: per-term row count diverges — error.
        let other_eta = Rambo::new(RamboParams::flat(8, 3, 1 << 12, 4, 1)).unwrap();
        let hashed = other_eta.hash_plan().hash_document("x", &[1, 2, 3]);
        assert!(matches!(
            idx.apply_hashed(&hashed),
            Err(RamboError::InvalidParams(_))
        ));
        // Identical geometry, different master seed: the rows are valid
        // positions but for the *wrong* hash family — accepting them would
        // be a silent false negative, so this must error too.
        let other_seed = Rambo::new(params(999)).unwrap();
        let hashed = other_seed.hash_plan().hash_document("x", &[1, 2, 3]);
        assert!(matches!(
            idx.apply_hashed(&hashed),
            Err(RamboError::InvalidParams(_))
        ));
        assert_eq!(idx.num_documents(), 0, "no half-registered documents");
    }

    #[test]
    fn empty_documents_and_streams_are_fine() {
        let mut idx = Rambo::new(params(2)).unwrap();
        let report = IngestPipeline::new()
            .ingest(&mut idx, std::iter::empty())
            .unwrap();
        assert_eq!(report.docs, 0);
        let report = IngestPipeline::new()
            .ingest(&mut idx, [("empty".to_string(), Vec::new())])
            .unwrap();
        assert_eq!(report.docs, 1);
        assert_eq!(idx.num_documents(), 1);
        assert_eq!(idx.total_inserts(), 0);
    }

    #[test]
    fn observer_sees_stalls_and_depths() {
        struct Spy {
            producer: AtomicUsize,
            writer: AtomicUsize,
            depths: AtomicUsize,
        }
        impl PipelineObserver for Spy {
            fn producer_stall(&self, _: Duration) {
                self.producer.fetch_add(1, Ordering::Relaxed);
            }
            fn writer_stall(&self, _: Duration) {
                self.writer.fetch_add(1, Ordering::Relaxed);
            }
            fn queue_depth(&self, _: usize) {
                self.depths.fetch_add(1, Ordering::Relaxed);
            }
        }
        let spy = Arc::new(Spy {
            producer: AtomicUsize::new(0),
            writer: AtomicUsize::new(0),
            depths: AtomicUsize::new(0),
        });
        let docs = archive(30, 40);
        let (_, report) = IngestPipeline::new()
            .queue_depth(1)
            .observer(Arc::clone(&spy) as Arc<dyn PipelineObserver>)
            .build(params(4), docs.iter().cloned())
            .unwrap();
        // Every enqueue samples the depth.
        assert_eq!(spy.depths.load(Ordering::Relaxed) as u64, report.docs);
        // Observer counts match the report's counters exactly.
        assert_eq!(
            spy.producer.load(Ordering::Relaxed) as u64,
            report.producer_stalls
        );
        assert_eq!(
            spy.writer.load(Ordering::Relaxed) as u64,
            report.writer_stalls
        );
    }

    #[test]
    fn sharded_then_fold_then_serialize_roundtrips() {
        // The sharded build composes with fold-over and serialization
        // because it produces literally the same structure.
        let docs = archive(24, 30);
        let (mut built, _) = IngestPipeline::new()
            .build_sharded(params(21), &docs, 3)
            .unwrap();
        let mut reference = sequential(params(21), &docs);
        built.fold_once().unwrap();
        reference.fold_once().unwrap();
        assert_eq!(built, reference);
        let back = Rambo::from_bytes(&built.to_bytes().unwrap()).unwrap();
        assert_eq!(built, back);
    }
}
