//! Guided parameter selection (§5.1 "Parameter Selection and Design
//! Choices").
//!
//! The paper's recipe: `B = O(√K)` with constants found empirically, `R =
//! O(log K)`, and BFU sizes from the *pooled* average document cardinality
//! ("it is sufficient to estimate the average set cardinality from a tiny
//! fraction of the data, and we use this cardinality to set the size for all
//! BFUs"). [`RamboBuilder`] packages exactly that, with every knob
//! overridable for reproducing the paper's hand-tuned settings.

use crate::error::RamboError;
use crate::index::Rambo;
use crate::params::RamboParams;
use crate::partition::PartitionScheme;
use crate::theory;
use rambo_bloom::params::optimal_m;

/// Builder deriving `(B, R, m, η)` from workload estimates.
#[derive(Debug, Clone)]
pub struct RamboBuilder {
    expected_documents: Option<usize>,
    expected_terms_per_doc: Option<usize>,
    expected_multiplicity: u32,
    target_fpr: f64,
    buckets: Option<u64>,
    nodes: Option<u64>,
    repetitions: Option<usize>,
    bfu_bits: Option<usize>,
    eta: Option<u32>,
    seed: u64,
}

impl Default for RamboBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl RamboBuilder {
    /// Start with the paper's defaults (η = 2, per-BFU FPR target 1%,
    /// multiplicity estimate V = 2).
    #[must_use]
    pub fn new() -> Self {
        Self {
            expected_documents: None,
            expected_terms_per_doc: None,
            expected_multiplicity: 2,
            target_fpr: 0.01,
            buckets: None,
            nodes: None,
            repetitions: None,
            bfu_bits: None,
            eta: None,
            seed: 0,
        }
    }

    /// Expected number of documents `K` (drives `B` and `R`). Required
    /// unless `buckets`, `repetitions` and `bfu_bits` are all overridden.
    #[must_use]
    pub fn expected_documents(mut self, k: usize) -> Self {
        self.expected_documents = Some(k);
        self
    }

    /// Pooled average distinct terms per document (drives BFU sizing —
    /// the §5.1 pooling method).
    #[must_use]
    pub fn expected_terms_per_doc(mut self, n: usize) -> Self {
        self.expected_terms_per_doc = Some(n);
        self
    }

    /// Expected term multiplicity `V` (how many documents share a typical
    /// term); enters `B = √(KV/η)`.
    #[must_use]
    pub fn expected_multiplicity(mut self, v: u32) -> Self {
        self.expected_multiplicity = v.max(1);
        self
    }

    /// Target *per-BFU* false-positive rate `p` (the overall rate follows
    /// Lemma 4.2; see [`theory::overall_fpr_bound`]).
    #[must_use]
    pub fn target_fpr(mut self, p: f64) -> Self {
        self.target_fpr = p;
        self
    }

    /// Override the bucket count `B`.
    #[must_use]
    pub fn buckets(mut self, b: u64) -> Self {
        self.buckets = Some(b);
        self
    }

    /// Lay the buckets out over `n` (simulated) nodes — §5.3 two-level
    /// scheme; `B` must then be divisible by `n`.
    #[must_use]
    pub fn nodes(mut self, n: u64) -> Self {
        self.nodes = Some(n);
        self
    }

    /// Override the repetition count `R`.
    #[must_use]
    pub fn repetitions(mut self, r: usize) -> Self {
        self.repetitions = Some(r);
        self
    }

    /// Override the BFU size in bits.
    #[must_use]
    pub fn bfu_bits(mut self, m: usize) -> Self {
        self.bfu_bits = Some(m);
        self
    }

    /// Override the per-BFU hash count `η`.
    #[must_use]
    pub fn eta(mut self, eta: u32) -> Self {
        self.eta = Some(eta);
        self
    }

    /// Master seed for all hash families.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Resolve the final parameters without constructing the index.
    ///
    /// # Errors
    /// [`RamboError::InvalidParams`] when required estimates are missing or
    /// the node count does not divide `B`.
    pub fn params(&self) -> Result<RamboParams, RamboError> {
        let eta = self.eta.unwrap_or(2); // the paper's RAMBO setting
        let buckets = match self.buckets {
            Some(b) => b,
            None => {
                let k = self.expected_documents.ok_or_else(|| {
                    RamboError::InvalidParams(
                        "expected_documents required to derive B (or set buckets)".into(),
                    )
                })?;
                theory::optimal_buckets(k, self.expected_multiplicity, eta)
            }
        };
        let repetitions = match self.repetitions {
            Some(r) => r,
            None => {
                let k = self.expected_documents.ok_or_else(|| {
                    RamboError::InvalidParams(
                        "expected_documents required to derive R (or set repetitions)".into(),
                    )
                })?;
                // The paper's empirical range is R = 2..5 for K = 100..460500;
                // log10 K matches that envelope.
                ((k.max(2) as f64).log10().ceil() as usize).clamp(2, 8)
            }
        };
        let bfu_bits = match self.bfu_bits {
            Some(m) => m,
            None => {
                let k = self.expected_documents.ok_or_else(|| {
                    RamboError::InvalidParams(
                        "expected_documents required to size BFUs (or set bfu_bits)".into(),
                    )
                })?;
                let n_bar = self.expected_terms_per_doc.ok_or_else(|| {
                    RamboError::InvalidParams(
                        "expected_terms_per_doc required to size BFUs (or set bfu_bits)".into(),
                    )
                })?;
                // Pooling method: expected keys per BFU = (K/B)·n̄, shrunk by
                // the Γ deduplication factor.
                let per_bucket = ((k as f64 / buckets as f64)
                    * n_bar as f64
                    * theory::gamma(buckets, self.expected_multiplicity))
                .ceil()
                .max(8.0) as usize;
                optimal_m(per_bucket, self.target_fpr)
            }
        };
        let partition = match self.nodes {
            None => PartitionScheme::Flat { buckets },
            Some(n) => {
                if n == 0 || buckets % n != 0 {
                    return Err(RamboError::InvalidParams(format!(
                        "nodes ({n}) must divide the bucket count ({buckets})"
                    )));
                }
                PartitionScheme::TwoLevel {
                    nodes: n,
                    local_buckets: buckets / n,
                }
            }
        };
        let params = RamboParams {
            partition,
            repetitions,
            bfu_bits,
            eta,
            seed: self.seed,
        };
        params.validate()?;
        Ok(params)
    }

    /// Build an empty index with the resolved parameters.
    ///
    /// # Errors
    /// Same as [`RamboBuilder::params`].
    pub fn build(&self) -> Result<Rambo, RamboError> {
        Rambo::new(self.params()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derives_paper_shaped_parameters() {
        let p = RamboBuilder::new()
            .expected_documents(2000)
            .expected_terms_per_doc(10_000)
            .seed(1)
            .params()
            .unwrap();
        // B = √(KV/η) = √(2000·2/2) ≈ 45.
        assert!((30..70).contains(&p.buckets()), "B = {}", p.buckets());
        // R = ceil(log10 2000) = 4.
        assert_eq!(p.repetitions, 4);
        assert_eq!(p.eta, 2);
        assert!(p.bfu_bits > 0);
    }

    #[test]
    fn overrides_win() {
        let p = RamboBuilder::new()
            .buckets(100)
            .repetitions(5)
            .bfu_bits(1 << 20)
            .eta(3)
            .seed(9)
            .params()
            .unwrap();
        assert_eq!(p.buckets(), 100);
        assert_eq!(p.repetitions, 5);
        assert_eq!(p.bfu_bits, 1 << 20);
        assert_eq!(p.eta, 3);
    }

    #[test]
    fn missing_estimates_are_reported() {
        assert!(RamboBuilder::new().params().is_err());
        assert!(RamboBuilder::new()
            .expected_documents(100)
            .params()
            .is_err()); // still needs terms per doc for sizing
    }

    #[test]
    fn nodes_must_divide_buckets() {
        let err = RamboBuilder::new()
            .buckets(100)
            .repetitions(2)
            .bfu_bits(1024)
            .nodes(7)
            .params();
        assert!(err.is_err());
        let ok = RamboBuilder::new()
            .buckets(100)
            .repetitions(2)
            .bfu_bits(1024)
            .nodes(10)
            .params()
            .unwrap();
        assert_eq!(
            ok.partition,
            PartitionScheme::TwoLevel {
                nodes: 10,
                local_buckets: 10
            }
        );
    }

    #[test]
    fn builder_builds_working_index() {
        let mut idx = RamboBuilder::new()
            .expected_documents(50)
            .expected_terms_per_doc(100)
            .seed(3)
            .build()
            .unwrap();
        let d = idx.insert_document("g", [7u64, 8, 9]).unwrap();
        assert!(idx.query_u64(8).contains(&d));
    }

    #[test]
    fn bigger_documents_get_bigger_bfus() {
        let small = RamboBuilder::new()
            .expected_documents(100)
            .expected_terms_per_doc(1_000)
            .params()
            .unwrap();
        let large = RamboBuilder::new()
            .expected_documents(100)
            .expected_terms_per_doc(100_000)
            .params()
            .unwrap();
        assert!(large.bfu_bits > small.bfu_bits * 50);
    }
}
