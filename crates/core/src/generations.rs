//! Online mutable RAMBO: LSM-style generations with live inserts.
//!
//! The paper's 170TB index is build-once, but a serving deployment needs
//! writes during reads. [`GenerationalIndex`] keeps one small **mutable
//! memtable** [`Rambo`] that absorbs [`GenerationalIndex::insert_document`]
//! calls, plus an ordered list of **immutable generations** — sealed
//! memtables round-tripped through [`Rambo::to_bytes`]/[`Rambo::open_view`],
//! so their filter payloads are zero-copy views of their own serialized form
//! (exactly the bytes a catalog tier or a disk file would hold).
//!
//! # Scalable-Bloom growth (when the memtable seals)
//!
//! A fixed-geometry index cannot absorb unbounded inserts: BFU fill — and
//! with it the false-positive rate — rises with every document. The memtable
//! therefore follows the scalable Bloom filter rule (the
//! `rambo_bloom` scalable-filter idea lifted to the RAMBO level): when its
//! *predicted* per-BFU FPR — the same metadata-only §2.1 estimate the
//! serving catalog quotes per tier — exceeds
//! [`GenerationConfig::memtable_fpr_budget`], the memtable is **sealed**:
//! serialized, re-opened as a zero-copy view, and appended to the generation
//! list, with a fresh empty memtable taking over. Geometry stays fixed
//! across all components (a requirement of `merge_or`-style OR-folds and of
//! bit-identity below); what grows is the number of sealed slices, just as a
//! scalable Bloom filter appends slices. A document-count cap
//! ([`GenerationConfig::memtable_max_docs`]) makes seal points deterministic
//! for tests and benchmarks.
//!
//! # Size-tiered merging (bounded read amplification)
//!
//! Every live generation is one more filter grid to probe per query — the
//! read-amplification concern Bloofi raises for filter collections. A merge
//! (run inline via [`GenerationalIndex::maintain`], or on a background
//! thread via the [`MergeJob`] split) OR-folds **adjacent** generations back
//! together whenever an older generation has fallen into its newer
//! neighbour's size class (`docs(i) < tier_growth · docs(i+1)`), so
//! generation sizes grow geometrically from newest to oldest and the live
//! count stays `O(log K)`. Merging only ever combines *adjacent* components,
//! which keeps the global document-id space — generation-local ids plus the
//! generation's `doc_lo` offset — contiguous and stable forever.
//!
//! # Bit-identity with a monolithic rebuild
//!
//! All components share one [`RamboParams`] (hence one partition-hash family
//! and one per-repetition Bloom seed schedule), so a monolithic index over
//! the same documents in the same arrival order is exactly the component-wise
//! OR: its filter matrix is the OR of the component matrices, and its bucket
//! lists are the offset concatenation of the component bucket lists. Queries
//! here evaluate **OR-first**: per repetition, each probed filter row is
//! OR-ed across components *before* the η-row AND that forms the bucket
//! mask. The order matters — AND-ing within each component and unioning the
//! per-component *answers* would miss exactly the monolith's
//! cross-component false positives and break bit-identity (the property
//! tests pin this equivalence, including for [`QueryMode::Sparse`]).

use std::sync::Arc;

use rambo_hash::HashPair;

use crate::error::RamboError;
use crate::index::{DocId, Rambo};
use crate::params::RamboParams;
use crate::query::{QueryContext, QueryMode};
use crate::theory;

/// Policy knobs for [`GenerationalIndex`]: when the memtable seals and when
/// generations merge.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenerationConfig {
    /// Seal the memtable when its predicted per-BFU FPR (the metadata-only
    /// §2.1 estimate, identical to the catalog's per-tier figure) exceeds
    /// this budget. Must lie in `(0, 1]`.
    pub memtable_fpr_budget: f64,
    /// Also seal once the memtable holds this many documents (`0` disables
    /// the cap). A deterministic seal point independent of term counts.
    pub memtable_max_docs: usize,
    /// Size-tier growth factor: adjacent generations merge when the older
    /// one holds fewer than `tier_growth ×` the newer one's documents. Must
    /// be at least 1.
    pub tier_growth: u64,
    /// Hard cap on live generations: beyond it the cheapest adjacent pair
    /// merges even if the size tiers are respected. Must be at least 1.
    pub max_generations: usize,
}

impl Default for GenerationConfig {
    fn default() -> Self {
        Self {
            memtable_fpr_budget: 0.01,
            memtable_max_docs: 1024,
            tier_growth: 2,
            max_generations: 8,
        }
    }
}

impl GenerationConfig {
    fn validate(&self) -> Result<(), RamboError> {
        if !(self.memtable_fpr_budget > 0.0 && self.memtable_fpr_budget <= 1.0) {
            return Err(RamboError::InvalidParams(
                "memtable_fpr_budget must lie in (0, 1]".into(),
            ));
        }
        if self.tier_growth == 0 {
            return Err(RamboError::InvalidParams(
                "tier_growth must be at least 1".into(),
            ));
        }
        if self.max_generations == 0 {
            return Err(RamboError::InvalidParams(
                "max_generations must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// One immutable generation: a sealed memtable re-opened as a zero-copy view
/// of its own serialized bytes, plus its global document-id offset.
#[derive(Debug, Clone)]
struct Generation {
    index: Arc<Rambo>,
    /// Global id of this generation's first document.
    doc_lo: u32,
    /// Serialized size of the sealed index (the view's backing buffer).
    encoded_len: usize,
}

/// Read-only description of one live generation, for stats surfaces.
#[derive(Debug, Clone, PartialEq)]
pub struct GenerationInfo {
    /// Position in the generation list (0 = oldest).
    pub ordinal: usize,
    /// Global id of the generation's first document.
    pub doc_lo: u32,
    /// Documents held.
    pub docs: usize,
    /// Serialized size in bytes of the sealed index.
    pub encoded_len: usize,
    /// Predicted per-BFU FPR (metadata-only §2.1 estimate).
    pub predicted_fpr: f64,
}

/// A planned merge of two adjacent generations, detached from the index so
/// the expensive OR-fold can run without holding any lock.
///
/// Obtain one with [`GenerationalIndex::merge_job`], run it with
/// [`MergeJob::run`] (no lock needed — it only reads the two `Arc`'d
/// immutable components), and hand the result back with
/// [`GenerationalIndex::install_merged`], which validates the job is still
/// current before splicing.
#[derive(Debug, Clone)]
pub struct MergeJob {
    /// Index of the older generation in the list at plan time.
    slot: usize,
    older: Arc<Rambo>,
    newer: Arc<Rambo>,
}

impl MergeJob {
    /// Position of the older of the two generations being merged.
    #[must_use]
    pub fn slot(&self) -> usize {
        self.slot
    }

    /// Combined document count of the merge output.
    #[must_use]
    pub fn docs(&self) -> usize {
        self.older.num_documents() + self.newer.num_documents()
    }

    /// OR-fold the two generations and seal the result. Heavy — run this
    /// off-lock; the job only touches its own `Arc`'d immutable components.
    ///
    /// # Errors
    /// Propagates serialization failures from sealing the merged index.
    pub fn run(&self) -> Result<SealedGeneration, RamboError> {
        let merged = merge_components(*self.older.params(), &[&self.older, &self.newer])?;
        SealedGeneration::seal(merged)
    }
}

/// A merged-and-sealed index produced by [`MergeJob::run`], ready for
/// [`GenerationalIndex::install_merged`].
#[derive(Debug)]
pub struct SealedGeneration {
    index: Arc<Rambo>,
    encoded_len: usize,
}

impl SealedGeneration {
    /// Serialize `index` and re-open it as a zero-copy view of its own
    /// bytes, so the sealed generation's filter payload borrows the
    /// serialized buffer instead of owning a second copy.
    fn seal(index: Rambo) -> Result<Self, RamboError> {
        let bytes: Arc<[u8]> = index.to_bytes()?.into();
        let encoded_len = bytes.len();
        // Arc payloads are at least 8-aligned on every mainstream allocator;
        // if an exotic one ever under-aligns the buffer, fall back to an
        // owned decode — correctness over zero-copy.
        let view = match Rambo::open_view(Arc::clone(&bytes)) {
            Ok(view) => view,
            Err(_) => Rambo::from_bytes(&bytes)?,
        };
        Ok(Self {
            index: Arc::new(view),
            encoded_len,
        })
    }

    /// Documents held by the sealed index.
    #[must_use]
    pub fn docs(&self) -> usize {
        self.index.num_documents()
    }
}

/// An online mutable RAMBO: one mutable memtable plus N immutable sealed
/// generations, query-equivalent (bit-identical) to a monolithic [`Rambo`]
/// over the same documents in the same order. See the module docs above
/// for the sealing/merging policy and the equivalence argument.
#[derive(Debug)]
pub struct GenerationalIndex {
    params: RamboParams,
    config: GenerationConfig,
    /// Immutable sealed components, oldest first; `doc_lo` ascending.
    generations: Vec<Generation>,
    /// Mutable component absorbing inserts.
    memtable: Rambo,
    /// Global id of the memtable's first document.
    memtable_lo: u32,
    /// Bumped on every structural change (seal or merge install). Servers
    /// key cached artifacts (catalog snapshots, result-cache versions) on
    /// this.
    epoch: u64,
}

impl GenerationalIndex {
    /// Create an empty generational index.
    ///
    /// # Errors
    /// [`RamboError::InvalidParams`] when `params` or `config` are
    /// degenerate.
    pub fn new(params: RamboParams, config: GenerationConfig) -> Result<Self, RamboError> {
        config.validate()?;
        Ok(Self {
            memtable: Rambo::new(params)?,
            params,
            config,
            generations: Vec::new(),
            memtable_lo: 0,
            epoch: 0,
        })
    }

    /// The shared construction parameters (identical for every component).
    #[must_use]
    pub fn params(&self) -> &RamboParams {
        &self.params
    }

    /// The sealing/merging policy.
    #[must_use]
    pub fn config(&self) -> &GenerationConfig {
        &self.config
    }

    /// Structural version: bumped on every seal and every merge install.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total documents across all generations and the memtable.
    #[must_use]
    pub fn num_documents(&self) -> usize {
        self.memtable_lo as usize + self.memtable.num_documents()
    }

    /// Documents currently in the mutable memtable.
    #[must_use]
    pub fn memtable_documents(&self) -> usize {
        self.memtable.num_documents()
    }

    /// Number of live immutable generations.
    #[must_use]
    pub fn num_generations(&self) -> usize {
        self.generations.len()
    }

    /// Total term insertions across all components (with multiplicity).
    #[must_use]
    pub fn total_inserts(&self) -> u64 {
        self.generations
            .iter()
            .map(|g| g.index.total_inserts())
            .sum::<u64>()
            + self.memtable.total_inserts()
    }

    /// In-memory footprint of all components' filter payloads.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.generations
            .iter()
            .map(|g| g.index.size_bytes())
            .sum::<usize>()
            + self.memtable.size_bytes()
    }

    /// Per-generation stats snapshot, oldest first.
    #[must_use]
    pub fn generation_infos(&self) -> Vec<GenerationInfo> {
        self.generations
            .iter()
            .enumerate()
            .map(|(ordinal, g)| GenerationInfo {
                ordinal,
                doc_lo: g.doc_lo,
                docs: g.index.num_documents(),
                encoded_len: g.encoded_len,
                predicted_fpr: predicted_fpr(&g.index),
            })
            .collect()
    }

    /// Global id of `name`, searching the memtable first, else any
    /// generation.
    #[must_use]
    pub fn document_id(&self, name: &str) -> Option<DocId> {
        if let Some(local) = self.memtable.document_id(name) {
            return Some(self.memtable_lo + local);
        }
        self.generations
            .iter()
            .find_map(|g| g.index.document_id(name).map(|local| g.doc_lo + local))
    }

    /// Name of global document `id`.
    ///
    /// # Panics
    /// When `id` was not issued by this index.
    #[must_use]
    pub fn document_name(&self, id: DocId) -> &str {
        if id >= self.memtable_lo {
            return self.memtable.document_name(id - self.memtable_lo);
        }
        let slot = self.generations.partition_point(|g| g.doc_lo <= id) - 1;
        let g = &self.generations[slot];
        g.index.document_name(id - g.doc_lo)
    }

    /// Predicted per-BFU FPR of the memtable — the metadata-only §2.1
    /// estimate (`theory::bfu_fpr` over average keys per bucket), identical
    /// to the figure the serving catalog quotes per tier. Cheap: no matrix
    /// scan.
    #[must_use]
    pub fn predicted_memtable_fpr(&self) -> f64 {
        predicted_fpr(&self.memtable)
    }

    /// Whether the next [`GenerationalIndex::insert_document`] would seal
    /// first (FPR budget exceeded or document cap reached).
    #[must_use]
    pub fn memtable_over_budget(&self) -> bool {
        let docs = self.memtable.num_documents();
        if docs == 0 {
            return false;
        }
        if self.config.memtable_max_docs > 0 && docs >= self.config.memtable_max_docs {
            return true;
        }
        self.predicted_memtable_fpr() > self.config.memtable_fpr_budget
    }

    /// Insert a document with its term set into the memtable, returning its
    /// **global** id (stable forever — merges only combine adjacent
    /// components, preserving id order). Seals the memtable afterwards if
    /// the insert pushed it over budget; sealing never changes the returned
    /// id.
    ///
    /// # Errors
    /// [`RamboError::DuplicateDocument`] when `name` is already indexed in
    /// any component; [`RamboError::InvalidParams`] when the u32 global id
    /// space is exhausted; sealing errors propagate.
    pub fn insert_document(&mut self, name: &str, terms: &[u64]) -> Result<DocId, RamboError> {
        // The memtable's own duplicate check only covers itself; the sealed
        // generations must be consulted too.
        for g in &self.generations {
            if g.index.document_id(name).is_some() {
                return Err(RamboError::DuplicateDocument(name.to_owned()));
            }
        }
        if self.memtable_lo as u64 + self.memtable.num_documents() as u64 >= u64::from(u32::MAX) {
            return Err(RamboError::InvalidParams(
                "document id space (u32) exhausted".into(),
            ));
        }
        let local = self.memtable.insert_document_batch(name, terms)?;
        let global = self.memtable_lo + local;
        if self.memtable_over_budget() {
            self.seal_memtable()?;
        }
        Ok(global)
    }

    /// Seal the memtable unconditionally: serialize it, re-open the bytes as
    /// a zero-copy view, append it as the newest generation, and start a
    /// fresh memtable. Returns `false` (and does nothing) when the memtable
    /// is empty. Bumps [`GenerationalIndex::epoch`].
    ///
    /// # Errors
    /// Serialization failures propagate; the index is unchanged on error.
    pub fn seal_memtable(&mut self) -> Result<bool, RamboError> {
        let docs = self.memtable.num_documents();
        if docs == 0 {
            return Ok(false);
        }
        let sealed = SealedGeneration::seal(std::mem::replace(
            &mut self.memtable,
            Rambo::new(self.params)?,
        ))?;
        self.generations.push(Generation {
            index: sealed.index,
            doc_lo: self.memtable_lo,
            encoded_len: sealed.encoded_len,
        });
        self.memtable_lo += docs as u32;
        self.epoch += 1;
        Ok(true)
    }

    /// Size-tiered merge planning: the position of the older generation of
    /// the next adjacent pair to merge, or `None` when the tiers are
    /// respected and the generation count is within
    /// [`GenerationConfig::max_generations`].
    ///
    /// Scanning newest-to-oldest, a pair merges when the older member holds
    /// fewer than `tier_growth ×` the newer member's documents; when only
    /// the hard cap is violated, the adjacent pair with the smallest
    /// combined document count merges instead.
    #[must_use]
    pub fn plan_merge(&self) -> Option<usize> {
        let n = self.generations.len();
        if n < 2 {
            return None;
        }
        let docs = |i: usize| self.generations[i].index.num_documents() as u64;
        for i in (0..n - 1).rev() {
            if docs(i) < self.config.tier_growth.saturating_mul(docs(i + 1)) {
                return Some(i);
            }
        }
        if n > self.config.max_generations {
            return (0..n - 1).min_by_key(|&i| docs(i) + docs(i + 1));
        }
        None
    }

    /// Whether [`GenerationalIndex::plan_merge`] has work.
    #[must_use]
    pub fn needs_merge(&self) -> bool {
        self.plan_merge().is_some()
    }

    /// Detach the next planned merge as a [`MergeJob`] whose heavy OR-fold
    /// can run without holding any lock on this index. `None` when no merge
    /// is due.
    #[must_use]
    pub fn merge_job(&self) -> Option<MergeJob> {
        let slot = self.plan_merge()?;
        Some(MergeJob {
            slot,
            older: Arc::clone(&self.generations[slot].index),
            newer: Arc::clone(&self.generations[slot + 1].index),
        })
    }

    /// Install the output of [`MergeJob::run`], replacing the job's two
    /// source generations with the merged one. Returns `false` without
    /// changing anything when the job is stale — the generations at
    /// `job.slot()` are no longer the exact `Arc`s the job captured (a
    /// competing merge installed first). Seals only *append*, so a job
    /// planned before concurrent seals still installs. Bumps
    /// [`GenerationalIndex::epoch`] on success.
    pub fn install_merged(&mut self, job: &MergeJob, merged: SealedGeneration) -> bool {
        let i = job.slot;
        if i + 1 >= self.generations.len()
            || !Arc::ptr_eq(&self.generations[i].index, &job.older)
            || !Arc::ptr_eq(&self.generations[i + 1].index, &job.newer)
        {
            return false;
        }
        debug_assert_eq!(merged.index.num_documents(), job.docs());
        let doc_lo = self.generations[i].doc_lo;
        self.generations.splice(
            i..=i + 1,
            [Generation {
                index: merged.index,
                doc_lo,
                encoded_len: merged.encoded_len,
            }],
        );
        self.epoch += 1;
        true
    }

    /// Run one planned merge inline (plan → OR-fold → install). Returns
    /// whether a merge happened.
    ///
    /// # Errors
    /// Propagates [`MergeJob::run`] failures.
    pub fn merge_once(&mut self) -> Result<bool, RamboError> {
        let Some(job) = self.merge_job() else {
            return Ok(false);
        };
        let merged = job.run()?;
        // Single-threaded: the job cannot have gone stale.
        let installed = self.install_merged(&job, merged);
        debug_assert!(installed);
        Ok(installed)
    }

    /// Inline maintenance: seal the memtable if it is over budget, then run
    /// merges until the size tiers are quiescent. The synchronous equivalent
    /// of one background-thread cycle.
    ///
    /// # Errors
    /// Propagates sealing/merging failures.
    pub fn maintain(&mut self) -> Result<(), RamboError> {
        if self.memtable_over_budget() {
            self.seal_memtable()?;
        }
        while self.merge_once()? {}
        Ok(())
    }

    /// Single-term convenience query (Full mode, fresh context).
    #[must_use]
    pub fn query_u64(&self, term: u64) -> Vec<DocId> {
        self.query_terms_with(&[term], QueryMode::Full, &mut QueryContext::new())
    }

    /// Multi-term AND query across memtable + generations, bit-identical to
    /// [`Rambo::query_terms_with`] on a monolithic rebuild of the same
    /// documents in the same order (see the module docs for the OR-first
    /// argument). Global document ids, ascending.
    #[must_use]
    pub fn query_terms_with(
        &self,
        terms: &[u64],
        mode: QueryMode,
        ctx: &mut QueryContext,
    ) -> Vec<DocId> {
        let docs = self.num_documents();
        if docs == 0 || terms.is_empty() {
            return Vec::new();
        }
        // Single live component: delegate — trivially identical.
        if self.generations.is_empty() {
            return self.memtable.query_terms_with(terms, mode, ctx);
        }
        if self.generations.len() == 1 && self.memtable.num_documents() == 0 {
            return self.generations[0].index.query_terms_with(terms, mode, ctx);
        }
        let mut comps: Vec<(&Rambo, u32)> = Vec::with_capacity(self.generations.len() + 1);
        comps.extend(self.generations.iter().map(|g| (&*g.index, g.doc_lo)));
        if self.memtable.num_documents() > 0 {
            comps.push((&self.memtable, self.memtable_lo));
        }
        // Hash each term once per repetition; the Bloom seed schedule is
        // derived from the shared master seed, so it is identical in every
        // component (and in the monolith).
        ctx.pairs.clear();
        for &seed in &self.memtable.bloom_seeds {
            ctx.pairs
                .extend(terms.iter().map(|&t| HashPair::of_u64(t, seed)));
        }
        ctx.ensure(docs, self.params.buckets() as usize);
        match mode {
            QueryMode::Full => full_union(&comps, &self.params, terms.len(), ctx),
            QueryMode::Sparse => sparse_union(&comps, &self.params, terms.len(), ctx),
        }
    }

    /// θ-fraction sequence query across memtable + generations: documents
    /// that (appear to) contain at least `theta · terms.len()` of the query
    /// terms. The per-term counting loop is exactly
    /// [`Rambo::query_sequence_theta`]'s, but each per-term membership test
    /// runs through [`GenerationalIndex::query_terms_with`] — which is
    /// bit-identical to the monolithic rebuild — so the θ answer is
    /// bit-identical too. This is the serving path behind the multi-tenant
    /// `R.QUERYSEQ` verb.
    ///
    /// # Panics
    /// Panics unless `0 < theta ≤ 1`.
    #[must_use]
    pub fn query_sequence_theta_with(
        &self,
        terms: &[u64],
        theta: f64,
        mode: QueryMode,
        ctx: &mut QueryContext,
    ) -> Vec<DocId> {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        let k = self.num_documents();
        if k == 0 || terms.is_empty() {
            return Vec::new();
        }
        let needed = ((theta * terms.len() as f64).ceil() as usize).max(1);
        // The per-term results land in `ctx`; the counts vector must not be
        // clobbered by the inner queries, so keep it local.
        let mut counts = vec![0u32; k];
        let mut max_count = 0usize;
        for (done, &term) in terms.iter().enumerate() {
            let hits = self.query_terms_with(&[term], mode, ctx);
            for d in hits {
                let c = &mut counts[d as usize];
                *c += 1;
                max_count = max_count.max(*c as usize);
            }
            let remaining = terms.len() - done - 1;
            if remaining == 0 {
                break;
            }
            // Even if every remaining term hit every document, nobody new
            // can reach the threshold once the deficit is fatal.
            if max_count + remaining < needed {
                return Vec::new();
            }
        }
        counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c as usize >= needed)
            .map(|(d, _)| d as DocId)
            .collect()
    }

    /// Rebuild a monolithic [`Rambo`] over every indexed document (global id
    /// order), by re-registering names and OR-folding all component
    /// matrices. Equals a from-scratch build over the same documents in the
    /// same order (full structural equality) — the bridge to the catalog
    /// path, which tiers/folds a single index.
    ///
    /// # Errors
    /// Propagates index-construction failures.
    pub fn to_monolithic(&self) -> Result<Rambo, RamboError> {
        let mut comps: Vec<&Rambo> = self.generations.iter().map(|g| &*g.index).collect();
        if self.memtable.num_documents() > 0 {
            comps.push(&self.memtable);
        }
        merge_components(self.params, &comps)
    }
}

/// Metadata-only predicted per-BFU FPR of one component (§2.1 estimate over
/// average keys per bucket — the same rule as the catalog's per-tier info).
fn predicted_fpr(index: &Rambo) -> f64 {
    let params = index.params();
    let keys = (index.total_inserts() / params.buckets().max(1)) as usize;
    theory::bfu_fpr(params.bfu_bits, keys, params.eta)
}

/// OR-fold `comps` (in order) into one fresh monolithic index: re-register
/// every document name (recomputing identical bucket assignments — the
/// partition hash depends only on name and shared seed), then `merge_or`
/// every table matrix. Exactly the document-sharded build idiom.
fn merge_components(params: RamboParams, comps: &[&Rambo]) -> Result<Rambo, RamboError> {
    let mut out = Rambo::new(params)?;
    for comp in comps {
        for name in comp.document_names() {
            out.add_document(name)?;
        }
    }
    for comp in comps {
        for (dst, src) in out.tables.iter_mut().zip(&comp.tables) {
            dst.matrix.merge_or(&src.matrix);
        }
        out.inserts += comp.total_inserts();
    }
    Ok(out)
}

/// Full-mode OR-first union query. Mirrors `query_full` exactly, except each
/// probed filter row is OR-ed across components before the η-AND, and bucket
/// document lists are unioned with each component's `doc_lo` offset.
fn full_union(
    comps: &[(&Rambo, u32)],
    params: &RamboParams,
    n_terms: usize,
    ctx: &mut QueryContext,
) -> Vec<DocId> {
    let eta = params.eta;
    let m = params.bfu_bits as u64;
    let row_words = (params.buckets() as usize).div_ceil(64);
    let mut or_row = vec![0u64; row_words];
    let mut one_row = vec![0u64; row_words];
    let QueryContext {
        pairs,
        mask,
        acc,
        tbl,
        ..
    } = ctx;
    for rep in 0..params.repetitions {
        let rep_pairs = &pairs[rep * n_terms..(rep + 1) * n_terms];
        mask.set_all();
        'probe: for (i, pair) in rep_pairs.iter().enumerate() {
            // Duplicate hash pairs AND idempotently — skip, matching the
            // monolith's `probe_all_into` dedup.
            if rep_pairs[..i].contains(pair) {
                continue;
            }
            for j in 0..eta {
                let p = pair.index(j, m) as usize;
                or_row.fill(0);
                for &(comp, _) in comps {
                    comp.tables[rep].matrix.row_into(p, &mut one_row);
                    for (dst, &src) in or_row.iter_mut().zip(one_row.iter()) {
                        *dst |= src;
                    }
                }
                if !mask.and_words_any(&or_row) {
                    break 'probe;
                }
            }
        }
        tbl.clear_all();
        for bucket in mask.iter_ones() {
            for &(comp, lo) in comps {
                for &d in &comp.tables[rep].buckets[bucket] {
                    tbl.set(lo as usize + d as usize);
                }
            }
        }
        let live = if rep == 0 {
            acc.copy_from(tbl);
            acc.any()
        } else {
            acc.and_assign_any(tbl)
        };
        if !live {
            return Vec::new();
        }
    }
    acc.iter_ones().map(|i| i as DocId).collect()
}

/// Sparse-mode OR-first union query. Mirrors `query_sparse` exactly:
/// repetition 0 forms the OR-first bucket mask and gathers offset global
/// candidates (sorted); later repetitions retain candidates through a
/// per-bucket memoized probe whose bit reads are OR-ed across components.
fn sparse_union(
    comps: &[(&Rambo, u32)],
    params: &RamboParams,
    n_terms: usize,
    ctx: &mut QueryContext,
) -> Vec<DocId> {
    let eta = params.eta;
    let m = params.bfu_bits as u64;
    let b = params.buckets() as usize;
    let row_words = b.div_ceil(64);
    let mut or_row = vec![0u64; row_words];
    let mut one_row = vec![0u64; row_words];
    let QueryContext {
        pairs,
        mask,
        probes,
        candidates,
        ..
    } = ctx;
    let rep_pairs = &pairs[..n_terms];
    mask.set_all();
    'probe: for (i, pair) in rep_pairs.iter().enumerate() {
        if rep_pairs[..i].contains(pair) {
            continue;
        }
        for j in 0..eta {
            let p = pair.index(j, m) as usize;
            or_row.fill(0);
            for &(comp, _) in comps {
                comp.tables[0].matrix.row_into(p, &mut one_row);
                for (dst, &src) in or_row.iter_mut().zip(one_row.iter()) {
                    *dst |= src;
                }
            }
            if !mask.and_words_any(&or_row) {
                break 'probe;
            }
        }
    }
    candidates.clear();
    for bucket in mask.iter_ones() {
        for &(comp, lo) in comps {
            candidates.extend(comp.tables[0].buckets[bucket].iter().map(|&d| lo + d));
        }
    }
    candidates.sort_unstable();
    for rep in 1..params.repetitions {
        if candidates.is_empty() {
            break;
        }
        probes[..b].fill(0);
        let rep_pairs = &pairs[rep * n_terms..(rep + 1) * n_terms];
        candidates.retain(|&gd| {
            let slot = comps.partition_point(|&(_, lo)| lo <= gd) - 1;
            let (comp, lo) = comps[slot];
            let bucket = comp.tables[rep].assign[(gd - lo) as usize] as usize;
            match probes[bucket] {
                1 => true,
                2 => false,
                _ => {
                    // Bucket membership = AND over (pair, η-row) of the
                    // OR-across-components bit — the monolith's
                    // `probe_bucket` on the OR-ed matrix. No dedup needed:
                    // duplicate pairs probe idempotently.
                    let hit = rep_pairs.iter().all(|pair| {
                        (0..eta).all(|j| {
                            let p = pair.index(j, m) as usize;
                            comps
                                .iter()
                                .any(|&(c, _)| c.tables[rep].matrix.bit(p, bucket))
                        })
                    });
                    probes[bucket] = if hit { 1 } else { 2 };
                    hit
                }
            }
        });
    }
    std::mem::take(candidates)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> RamboParams {
        RamboParams::flat(8, 3, 256, 2, 42)
    }

    fn config(max_docs: usize) -> GenerationConfig {
        GenerationConfig {
            memtable_max_docs: max_docs,
            ..GenerationConfig::default()
        }
    }

    /// Deterministic fake document corpus: `doc-i` holds a window of terms.
    fn doc(i: usize) -> (String, Vec<u64>) {
        let terms: Vec<u64> = (0..12).map(|t| (i as u64 * 7 + t * 3) % 97).collect();
        (format!("doc-{i}"), terms)
    }

    fn oracle(n: usize) -> Rambo {
        let mut mono = Rambo::new(params()).unwrap();
        for i in 0..n {
            let (name, terms) = doc(i);
            mono.insert_document_batch(&name, &terms).unwrap();
        }
        mono
    }

    #[test]
    fn rejects_degenerate_config() {
        let bad = GenerationConfig {
            memtable_fpr_budget: 0.0,
            ..GenerationConfig::default()
        };
        assert!(GenerationalIndex::new(params(), bad).is_err());
        let bad = GenerationConfig {
            tier_growth: 0,
            ..GenerationConfig::default()
        };
        assert!(GenerationalIndex::new(params(), bad).is_err());
        let bad = GenerationConfig {
            max_generations: 0,
            ..GenerationConfig::default()
        };
        assert!(GenerationalIndex::new(params(), bad).is_err());
    }

    #[test]
    fn auto_seals_on_doc_cap_and_ids_are_stable() {
        let mut gi = GenerationalIndex::new(params(), config(4)).unwrap();
        for i in 0..13 {
            let (name, terms) = doc(i);
            let id = gi.insert_document(&name, &terms).unwrap();
            assert_eq!(id as usize, i, "global ids are issued sequentially");
        }
        assert!(gi.num_generations() >= 1, "doc cap must have sealed");
        assert_eq!(gi.num_documents(), 13);
        for i in 0..13 {
            let (name, _) = doc(i);
            assert_eq!(gi.document_id(&name), Some(i as u32));
            assert_eq!(gi.document_name(i as u32), name);
        }
    }

    #[test]
    fn duplicate_names_rejected_across_components() {
        let mut gi = GenerationalIndex::new(params(), config(2)).unwrap();
        for i in 0..5 {
            let (name, terms) = doc(i);
            gi.insert_document(&name, &terms).unwrap();
        }
        assert!(gi.num_generations() >= 1);
        // doc-0 lives in a sealed generation by now; doc-4 in the memtable.
        for i in [0usize, 4] {
            let (name, terms) = doc(i);
            assert!(matches!(
                gi.insert_document(&name, &terms),
                Err(RamboError::DuplicateDocument(_))
            ));
        }
    }

    #[test]
    fn queries_match_monolith_across_seals_and_merges() {
        let mut gi = GenerationalIndex::new(params(), config(3)).unwrap();
        let mut ctx = QueryContext::new();
        for i in 0..20 {
            let (name, terms) = doc(i);
            gi.insert_document(&name, &terms).unwrap();
            if i % 7 == 6 {
                gi.maintain().unwrap();
            }
            let mono = oracle(i + 1);
            let mut mctx = QueryContext::new();
            for probe in [0u64, 3, 50, 96, 1000] {
                for mode in [QueryMode::Full, QueryMode::Sparse] {
                    let got = gi.query_terms_with(&[probe], mode, &mut ctx);
                    let want = mono.query_terms_with(&[probe], mode, &mut mctx);
                    assert_eq!(got, want, "term {probe} mode {mode:?} after doc {i}");
                }
                // Multi-term AND as well.
                let got = gi.query_terms_with(&[probe, probe + 3], QueryMode::Full, &mut ctx);
                let want = mono.query_terms_with(&[probe, probe + 3], QueryMode::Full, &mut mctx);
                assert_eq!(got, want);
            }
        }
    }

    #[test]
    fn to_monolithic_equals_from_scratch_build() {
        let mut gi = GenerationalIndex::new(params(), config(3)).unwrap();
        for i in 0..17 {
            let (name, terms) = doc(i);
            gi.insert_document(&name, &terms).unwrap();
        }
        gi.maintain().unwrap();
        assert_eq!(gi.to_monolithic().unwrap(), oracle(17));
    }

    #[test]
    fn merge_policy_bounds_generation_count() {
        let mut gi = GenerationalIndex::new(params(), config(2)).unwrap();
        for i in 0..40 {
            let (name, terms) = doc(i);
            gi.insert_document(&name, &terms).unwrap();
            gi.maintain().unwrap();
        }
        // 20 seals of 2 docs each, size-tiered with growth 2 => O(log n).
        assert!(
            gi.num_generations() <= 6,
            "got {} generations",
            gi.num_generations()
        );
        let infos = gi.generation_infos();
        for w in infos.windows(2) {
            assert!(w[0].doc_lo < w[1].doc_lo);
        }
    }

    #[test]
    fn stale_merge_job_is_rejected() {
        let mut gi = GenerationalIndex::new(params(), config(2)).unwrap();
        for i in 0..8 {
            let (name, terms) = doc(i);
            gi.insert_document(&name, &terms).unwrap();
        }
        let job = gi.merge_job().expect("a merge should be due");
        let merged = job.run().unwrap();
        // A competing merge installs first.
        assert!(gi.merge_once().unwrap());
        assert!(
            !gi.install_merged(&job, merged),
            "stale job must be rejected"
        );
        // The index remains consistent and queryable.
        assert_eq!(gi.to_monolithic().unwrap(), oracle(8));
    }

    #[test]
    fn seal_survives_concurrent_merge_job() {
        // A job planned before a seal still installs: seals only append.
        let mut gi = GenerationalIndex::new(params(), config(2)).unwrap();
        for i in 0..8 {
            let (name, terms) = doc(i);
            gi.insert_document(&name, &terms).unwrap();
        }
        let job = gi.merge_job().expect("a merge should be due");
        let (name, terms) = doc(100);
        gi.insert_document(&name, &terms).unwrap();
        let (name, terms) = doc(101);
        gi.insert_document(&name, &terms).unwrap(); // seals (cap 2)
        let merged = job.run().unwrap();
        assert!(gi.install_merged(&job, merged), "append-only seal is safe");
        let mut mono = oracle(8);
        for i in [100usize, 101] {
            let (name, terms) = doc(i);
            mono.insert_document_batch(&name, &terms).unwrap();
        }
        assert_eq!(gi.to_monolithic().unwrap(), mono);
    }

    #[test]
    fn fpr_budget_seals_without_doc_cap() {
        let tight = GenerationConfig {
            memtable_fpr_budget: 1e-6,
            memtable_max_docs: 0,
            ..GenerationConfig::default()
        };
        let mut gi = GenerationalIndex::new(params(), tight).unwrap();
        for i in 0..6 {
            let (name, terms) = doc(i);
            gi.insert_document(&name, &terms).unwrap();
        }
        assert!(
            gi.num_generations() >= 1,
            "a tiny FPR budget must force seals"
        );
    }

    #[test]
    fn empty_and_empty_term_queries() {
        let mut gi = GenerationalIndex::new(params(), config(2)).unwrap();
        assert!(gi.query_u64(7).is_empty());
        assert!(gi
            .query_terms_with(&[], QueryMode::Full, &mut QueryContext::new())
            .is_empty());
        let (name, terms) = doc(0);
        gi.insert_document(&name, &terms).unwrap();
        assert!(gi
            .query_terms_with(&[], QueryMode::Sparse, &mut QueryContext::new())
            .is_empty());
        assert!(gi.seal_memtable().unwrap());
        assert!(!gi.seal_memtable().unwrap(), "empty memtable does not seal");
    }
}
