//! RAMBO parameters (`B`, `R`, BFU geometry, seeds).

use crate::error::RamboError;
use crate::partition::PartitionScheme;

/// Full parameter set of a RAMBO index.
///
/// The two structural knobs are the partition scheme (how many buckets `B`,
/// flat or two-level for distributed builds) and the repetition count `R`;
/// `bfu_bits`/`eta` size the individual Bloom Filters for the Union. All hash
/// functions (Bloom family, `R` partition hashes, node router) derive
/// deterministically from `seed` — the paper's §5.3 requires every machine to
/// share them so fold-over and stacking stay lossless.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RamboParams {
    /// Document partition layout (the `B` of the paper).
    pub partition: PartitionScheme,
    /// Number of independent repetitions (the `R` of the paper).
    pub repetitions: usize,
    /// Bits per BFU (`m`). All BFUs share one size, set from the pooled
    /// average document cardinality (§5.1 "Size of BFU").
    pub bfu_bits: usize,
    /// Hash probes per key per BFU (`η`; "ranges from 1 to 6 in practice").
    pub eta: u32,
    /// Master seed for every hash family in the index.
    pub seed: u64,
}

impl RamboParams {
    /// Convenience constructor for a flat (single-machine) layout.
    #[must_use]
    pub fn flat(buckets: u64, repetitions: usize, bfu_bits: usize, eta: u32, seed: u64) -> Self {
        Self {
            partition: PartitionScheme::Flat { buckets },
            repetitions,
            bfu_bits,
            eta,
            seed,
        }
    }

    /// Convenience constructor for the two-level (distributed) layout of
    /// §5.3: `nodes · local_buckets` global buckets.
    #[must_use]
    pub fn two_level(
        nodes: u64,
        local_buckets: u64,
        repetitions: usize,
        bfu_bits: usize,
        eta: u32,
        seed: u64,
    ) -> Self {
        Self {
            partition: PartitionScheme::TwoLevel {
                nodes,
                local_buckets,
            },
            repetitions,
            bfu_bits,
            eta,
            seed,
        }
    }

    /// Total buckets per repetition (`B`).
    #[must_use]
    pub fn buckets(&self) -> u64 {
        self.partition.total_buckets()
    }

    /// Validate dimensions.
    ///
    /// # Errors
    /// [`RamboError::InvalidParams`] when any dimension is degenerate.
    pub fn validate(&self) -> Result<(), RamboError> {
        let b = self.buckets();
        if b < 2 {
            return Err(RamboError::InvalidParams(format!(
                "need at least 2 buckets, got {b}"
            )));
        }
        if self.repetitions == 0 {
            return Err(RamboError::InvalidParams("repetitions must be ≥ 1".into()));
        }
        if self.bfu_bits == 0 {
            return Err(RamboError::InvalidParams("bfu_bits must be ≥ 1".into()));
        }
        if self.eta == 0 {
            return Err(RamboError::InvalidParams("eta must be ≥ 1".into()));
        }
        if u32::try_from(b).is_err() {
            return Err(RamboError::InvalidParams(format!(
                "bucket count {b} exceeds u32 addressing"
            )));
        }
        Ok(())
    }

    /// Total index payload in bits if fully allocated: `B · R · m`.
    #[must_use]
    pub fn total_bits(&self) -> u128 {
        u128::from(self.buckets()) * self.repetitions as u128 * self.bfu_bits as u128
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_and_two_level_bucket_counts() {
        let f = RamboParams::flat(100, 3, 1 << 20, 2, 1);
        assert_eq!(f.buckets(), 100);
        let t = RamboParams::two_level(10, 50, 5, 1 << 20, 2, 1);
        assert_eq!(t.buckets(), 500);
        assert!(f.validate().is_ok());
        assert!(t.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_dimensions() {
        assert!(RamboParams::flat(1, 3, 10, 2, 0).validate().is_err());
        assert!(RamboParams::flat(10, 0, 10, 2, 0).validate().is_err());
        assert!(RamboParams::flat(10, 3, 0, 2, 0).validate().is_err());
        assert!(RamboParams::flat(10, 3, 10, 0, 0).validate().is_err());
    }

    #[test]
    fn total_bits_product() {
        let p = RamboParams::flat(200, 3, 1_000_000, 2, 9);
        assert_eq!(p.total_bits(), 200 * 3 * 1_000_000);
    }
}
