//! Distributed construction (§5.3): "Smart parallelism — indexing the full
//! 170TB WGS dataset in 9 hours from scratch".
//!
//! The paper partitions the RAMBO data structure itself over 100 nodes: node
//! `τ(D)` owns document `D`, and inside the node the usual `φᵢ(D)` picks a
//! local BFU. Because the composed two-level map `b·τ(D) + φᵢ(D)` is again
//! 2-universal, *stacking* the per-node structures vertically yields exactly
//! the monolithic index — no inter-node communication, no repeated
//! installations ("this process preserves all the mathematical properties
//! and randomness in RAMBO").
//!
//! Here nodes are simulated by OS threads (see DESIGN.md, "Substitutions"
//! item 3): [`ShardedRambo`] owns one node-local shard per simulated machine,
//! [`ShardedRambo::build_parallel`] streams documents through per-node
//! channels exactly as the paper's router does, and [`ShardedRambo::stack`]
//! produces a monolithic [`Rambo`] that is **bit-for-bit identical** to a
//! single-machine build with the same seed (verified in the test suite).

use crate::error::RamboError;
use crate::index::{DocId, Rambo};
use crate::params::RamboParams;
use crate::partition::{derive_seeds, PartitionScheme, Resolver};
use crate::query::{QueryContext, QueryMode};
use rambo_hash::TwoLevelHash;

/// A RAMBO build split over `N` simulated nodes.
#[derive(Debug)]
pub struct ShardedRambo {
    params: RamboParams,
    router: TwoLevelHash,
    shards: Vec<Rambo>,
    local_buckets: u64,
}

impl ShardedRambo {
    /// Create the empty per-node shards. `params.partition` must be
    /// [`PartitionScheme::TwoLevel`].
    ///
    /// # Errors
    /// [`RamboError::InvalidParams`] for non-two-level layouts or degenerate
    /// dimensions.
    pub fn new(params: RamboParams) -> Result<Self, RamboError> {
        params.validate()?;
        let PartitionScheme::TwoLevel {
            nodes,
            local_buckets,
        } = params.partition
        else {
            return Err(RamboError::InvalidParams(
                "sharded construction requires a TwoLevel partition scheme".into(),
            ));
        };
        let seeds = derive_seeds(params.seed);
        let router =
            Resolver::shared_router(nodes, local_buckets, params.repetitions, seeds.partition);
        let shards = (0..nodes)
            .map(|node| {
                let local = RamboParams {
                    partition: PartitionScheme::Flat {
                        buckets: local_buckets,
                    },
                    ..params
                };
                Rambo::from_parts(
                    local,
                    Resolver::NodeLocal {
                        router: router.clone(),
                        node,
                    },
                    seeds.bloom,
                )
            })
            .collect();
        Ok(Self {
            params,
            router,
            shards,
            local_buckets,
        })
    }

    /// Number of simulated nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.shards.len()
    }

    /// Which node owns a document name (`τ`).
    #[must_use]
    pub fn route(&self, name: &str) -> u64 {
        self.router.node_of(name.as_bytes())
    }

    /// A node's local shard (for inspection/tests).
    ///
    /// # Panics
    /// Panics when `node` is out of range.
    #[must_use]
    pub fn shard(&self, node: usize) -> &Rambo {
        &self.shards[node]
    }

    /// Consume the builder and hand out the node-local shards — the piece a
    /// *serving* cluster deploys. Each shard is a standalone [`Rambo`] over
    /// `local_buckets` buckets holding exactly the documents `τ` routed to
    /// that node, hashing with the shared router, so its answers are the
    /// monolithic index's answers restricted to its own documents: the
    /// two-level map gives every node a disjoint slice of the global bucket
    /// space, and [`ShardedRambo::stack`] copies those slices verbatim.
    /// Document ids are node-local (0.. per shard, in ingestion order);
    /// a coordinator recovers the stacked index's node-major global ids by
    /// offsetting with the cumulative document counts of earlier shards.
    #[must_use]
    pub fn into_shards(self) -> Vec<Rambo> {
        self.shards
    }

    /// Sequentially ingest one document on its owning node. Returns the node
    /// and the node-local document id.
    ///
    /// # Errors
    /// [`RamboError::DuplicateDocument`] if the name was already ingested.
    pub fn ingest_document(
        &mut self,
        name: &str,
        terms: impl IntoIterator<Item = u64>,
    ) -> Result<(u64, DocId), RamboError> {
        let node = self.route(name);
        let id = self.shards[node as usize].insert_document(name, terms)?;
        Ok((node, id))
    }

    /// Parallel ingestion: spawns one worker thread per node, routes each
    /// document through a channel to its owner (the paper's streaming
    /// setting), then stacks. This is the whole §5.3 pipeline.
    ///
    /// # Errors
    /// Propagates per-node ingestion failures and stacking failures.
    ///
    /// # Panics
    /// Panics if a worker thread panics.
    pub fn build_parallel(
        mut self,
        docs: impl IntoIterator<Item = (String, Vec<u64>)>,
    ) -> Result<Rambo, RamboError> {
        let shards = std::mem::take(&mut self.shards);
        let router = &self.router;
        let built: Result<Vec<Rambo>, RamboError> = std::thread::scope(|scope| {
            let mut txs = Vec::with_capacity(shards.len());
            let mut handles = Vec::with_capacity(shards.len());
            for mut shard in shards {
                let (tx, rx) = std::sync::mpsc::channel::<(String, Vec<u64>)>();
                txs.push(tx);
                handles.push(scope.spawn(move || -> Result<Rambo, RamboError> {
                    for (name, terms) in rx {
                        // One node = one worker thread: keep the per-document
                        // batch insertion sequential (threads = 1) so the
                        // node fan-out isn't multiplied by the batch engine's
                        // per-repetition fan-out.
                        shard.insert_document_batch_with(&name, &terms, 1)?;
                    }
                    Ok(shard)
                }));
            }
            for (name, terms) in docs {
                let node = router.node_of(name.as_bytes()) as usize;
                txs[node]
                    .send((name, terms))
                    .expect("worker hung up before end of stream");
            }
            drop(txs); // close channels; workers drain and return
            handles
                .into_iter()
                .map(|h| h.join().expect("node worker panicked"))
                .collect()
        });
        self.shards = built?;
        self.stack()
    }

    /// Stack the node shards vertically into the monolithic index
    /// (Figure 3). Global BFU index = `node·b + local`; document ids are
    /// renumbered node-major.
    ///
    /// # Errors
    /// [`RamboError::FoldUnavailable`] if any shard was folded before
    /// stacking (fold after stacking instead), or
    /// [`RamboError::DuplicateDocument`] if two shards somehow share a name.
    pub fn stack(self) -> Result<Rambo, RamboError> {
        let mut out = Rambo::new(self.params)?;
        let local_b = self.local_buckets;
        for (node, shard) in self.shards.into_iter().enumerate() {
            if shard.fold_factor() != 0 {
                return Err(RamboError::FoldUnavailable(
                    "shards must be stacked before folding".into(),
                ));
            }
            let offset = out.doc_names.len() as u32;
            for (local_id, name) in shard.doc_names.iter().enumerate() {
                let global = offset + local_id as u32;
                if out.name_index.insert(name.clone(), global).is_some() {
                    return Err(RamboError::DuplicateDocument(name.clone()));
                }
                out.doc_names.push(name.clone());
            }
            let bucket_base = node as u64 * local_b;
            for (dst, src) in out.tables.iter_mut().zip(shard.tables) {
                dst.assign
                    .extend(src.assign.iter().map(|&a| a + bucket_base as u32));
                for (lb, docs) in src.buckets.into_iter().enumerate() {
                    dst.buckets[bucket_base as usize + lb]
                        .extend(docs.into_iter().map(|d| d + offset));
                }
                dst.matrix
                    .copy_columns_from(&src.matrix, bucket_base as usize);
            }
            out.inserts += shard.inserts;
        }
        Ok(out)
    }
}

/// One-call §5.3 pipeline: shard, ingest in parallel, stack.
///
/// # Errors
/// See [`ShardedRambo::new`] and [`ShardedRambo::build_parallel`].
pub fn build_sharded_parallel(
    params: RamboParams,
    docs: impl IntoIterator<Item = (String, Vec<u64>)>,
) -> Result<Rambo, RamboError> {
    ShardedRambo::new(params)?.build_parallel(docs)
}

impl Rambo {
    /// Embarrassingly parallel batch querying (the paper: "RAMBO … is
    /// embarrassingly parallel for both insertion and query"). Splits the
    /// term batch over `threads` OS threads, each with its own
    /// [`QueryContext`]; results come back in input order.
    ///
    /// # Panics
    /// Panics if `threads == 0` or a worker thread panics.
    #[must_use]
    pub fn query_batch_parallel(
        &self,
        terms: &[u64],
        mode: QueryMode,
        threads: usize,
    ) -> Vec<Vec<DocId>> {
        assert!(threads > 0, "need at least one thread");
        if terms.is_empty() {
            return Vec::new();
        }
        let chunk = terms.len().div_ceil(threads);
        std::thread::scope(|scope| {
            let handles: Vec<_> = terms
                .chunks(chunk)
                .map(|slice| {
                    scope.spawn(move || {
                        let mut ctx = QueryContext::new();
                        slice
                            .iter()
                            .map(|&t| self.query_terms_with(&[t], mode, &mut ctx))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("query worker panicked"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(nodes: u64, local_b: u64, seed: u64) -> RamboParams {
        RamboParams::two_level(nodes, local_b, 3, 1 << 13, 2, seed)
    }

    fn make_docs(k: usize) -> Vec<(String, Vec<u64>)> {
        (0..k)
            .map(|d| {
                let base = (d as u64) << 20;
                (
                    format!("genome-{d:04}"),
                    (0..50u64).map(|t| base | t).collect(),
                )
            })
            .collect()
    }

    /// The §5.3 headline property: stacked sharded build == monolithic build,
    /// BFU for BFU, bit for bit.
    #[test]
    fn stacked_equals_monolithic() {
        let docs = make_docs(60);
        let p = params(4, 8, 11);

        // Sharded, sequential ingestion.
        let mut sharded = ShardedRambo::new(p).unwrap();
        for (name, terms) in &docs {
            sharded
                .ingest_document(name, terms.iter().copied())
                .unwrap();
        }
        let stacked = sharded.stack().unwrap();

        // Monolithic, same seed — inserted in node-major order to align doc
        // ids with the stacked renumbering.
        let probe = ShardedRambo::new(p).unwrap();
        let mut by_node: Vec<Vec<&(String, Vec<u64>)>> = vec![Vec::new(); 4];
        for doc in &docs {
            by_node[probe.route(&doc.0) as usize].push(doc);
        }
        let mut mono = Rambo::new(p).unwrap();
        for node_docs in by_node {
            for (name, terms) in node_docs {
                mono.insert_document(name, terms.iter().copied()).unwrap();
            }
        }
        assert_eq!(stacked, mono, "stacking must be lossless");
    }

    #[test]
    fn parallel_build_equals_sequential_shards() {
        let docs = make_docs(80);
        let p = params(5, 4, 23);

        let parallel = build_sharded_parallel(p, docs.clone()).unwrap();

        let mut sequential = ShardedRambo::new(p).unwrap();
        for (name, terms) in &docs {
            sequential
                .ingest_document(name, terms.iter().copied())
                .unwrap();
        }
        let sequential = sequential.stack().unwrap();

        // Same BFU bits regardless of thread interleaving (document order
        // within a node is preserved by the channel, so full equality holds).
        assert_eq!(parallel, sequential);
        assert_eq!(parallel.num_documents(), 80);
    }

    #[test]
    fn queries_on_stacked_index_find_owners() {
        let docs = make_docs(40);
        let p = params(4, 4, 31);
        let idx = build_sharded_parallel(p, docs.clone()).unwrap();
        for (name, terms) in &docs {
            let id = idx.document_id(name).unwrap();
            for &t in terms.iter().take(3) {
                assert!(idx.query_u64(t).contains(&id), "{name} lost term {t:#x}");
            }
        }
    }

    #[test]
    fn routing_is_deterministic_and_balanced() {
        let s = ShardedRambo::new(params(8, 4, 1)).unwrap();
        let mut counts = [0usize; 8];
        for i in 0..800 {
            let name = format!("doc{i}");
            let n = s.route(&name);
            assert_eq!(n, s.route(&name));
            counts[n as usize] += 1;
        }
        for (node, &c) in counts.iter().enumerate() {
            assert!((40..200).contains(&c), "node {node} got {c} docs");
        }
    }

    #[test]
    fn rejects_flat_layout() {
        let p = RamboParams::flat(16, 2, 1024, 2, 0);
        assert!(matches!(
            ShardedRambo::new(p),
            Err(RamboError::InvalidParams(_))
        ));
    }

    #[test]
    fn rejects_folded_shards_at_stack_time() {
        let mut s = ShardedRambo::new(params(2, 8, 3)).unwrap();
        for (name, terms) in make_docs(10) {
            s.ingest_document(&name, terms).unwrap();
        }
        s.shards[0].fold_once().unwrap();
        assert!(matches!(s.stack(), Err(RamboError::FoldUnavailable(_))));
    }

    #[test]
    fn stacked_index_can_fold_and_serialize() {
        let docs = make_docs(30);
        let p = params(4, 4, 7);
        let mut idx = build_sharded_parallel(p, docs.clone()).unwrap();
        idx.fold_once().unwrap();
        assert_eq!(idx.buckets(), 8);
        let back = Rambo::from_bytes(&idx.to_bytes().unwrap()).unwrap();
        assert_eq!(idx, back);
        // No false negatives post fold + roundtrip.
        let id = back.document_id("genome-0005").unwrap();
        assert!(back.query_u64((5u64 << 20) | 7).contains(&id));
    }

    #[test]
    fn node_local_shards_serialize_with_their_routing_context() {
        // Partition tag 2 (serialize.rs) carries the node-local routing
        // context, so each shard round-trips independently — the basis for
        // shipping a shard to its serving node (rambo-cluster).
        let mut s = ShardedRambo::new(params(2, 8, 9)).unwrap();
        for (name, terms) in make_docs(10) {
            s.ingest_document(&name, terms).unwrap();
        }
        for shard in &s.shards {
            let back = Rambo::from_bytes(&shard.to_bytes().unwrap()).unwrap();
            assert_eq!(*shard, back);
        }
    }

    #[test]
    fn parallel_batch_query_matches_serial() {
        let docs = make_docs(50);
        let idx = build_sharded_parallel(params(4, 4, 13), docs.clone()).unwrap();
        let terms: Vec<u64> = docs
            .iter()
            .flat_map(|(_, ts)| ts[..2].to_vec())
            .chain((0..20).map(|i| 0xF000_0000u64 + i))
            .collect();
        let serial: Vec<Vec<DocId>> = terms.iter().map(|&t| idx.query_u64(t)).collect();
        for threads in [1, 2, 4, 7] {
            let par = idx.query_batch_parallel(&terms, QueryMode::Full, threads);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }
}
