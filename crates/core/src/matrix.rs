//! Position-major BFU storage: the Count-Min-Sketch layout of a RAMBO table.
//!
//! A repetition holds `B` Bloom Filters for the Union that share one hash
//! family and one size `m` (required for fold-over and stacking). A query
//! term therefore probes the *same* bit position in every BFU — exactly a
//! Count-Min-Sketch row access. Storing the table as an `m × B` bit matrix
//! (row = filter position, column = BFU) turns the per-table probe from
//! `B·η` scattered bit reads into `η` contiguous `B`-bit row reads ANDed
//! together — the same word-parallel trick BIGSI/COBS use across documents,
//! applied across buckets. This is what makes RAMBO's `O(√K)` probe phase
//! beat COBS's `O(K)` row scan in practice and not just asymptotically.
//!
//! The probe itself runs through the fused kernels of
//! [`rambo_bitvec::kernel`]: up to four probed rows are ANDed into the
//! bucket mask per pass (duplicate query terms deduplicated first), and the
//! table is abandoned the moment the running mask goes all-zero. The kernels
//! are runtime-dispatched ([`rambo_bitvec::kernel::Backend`]): the probe,
//! the repetition-intersection walk and the bit-sliced column fills all pick
//! up the AVX2 variants on hosts that support them, with no change here. The word
//! payload lives in a [`WordStore`] — owned, or a zero-copy view into a
//! serialized index buffer (see [`crate::Rambo::open_view`]); mutating a
//! viewed matrix promotes it to owned storage first.
//!
//! The layout also keeps the §5.3 operations cheap and exact:
//! * **fold-over** ORs the right half of every row onto the left half
//!   (columns `b` and `b + B/2` merge — Figure 3);
//! * **stacking** copies each node's rows into a column window of the global
//!   matrix (`global bucket = node·b + local`).

use crate::error::RamboError;
use bytes::{Buf, BufMut};
use rambo_bitvec::{
    kernel, skip_word_padding, write_word_padding, BitVec, BlockCacheCounters, DecodeError,
    PagedFile, PagedWords, RrrMatrix, WordStore, WordView,
};
use rambo_hash::HashPair;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"RBFM";
/// Bytes before the alignment padding: magic, rows, columns, pad length.
const HEADER_BYTES: usize = 4 + 8 + 8 + 1;

/// Storage backend behind one repetition's bit payload.
///
/// * `Dense` — row-major words, owned or a zero-copy view; the probe fast
///   path (staged 4-row fused AND) runs only here.
/// * `Rrr` — RRR-compressed rows for cold tiers; probes decode the touched
///   rows block-wise into dense scratch words.
/// * `Paged` — dense rows left on disk, faulted in row-aligned blocks
///   through a shared byte-budgeted cache.
///
/// Mutation always goes through [`BfuMatrix::words_mut`], which first
/// materializes owned dense storage, so `Rrr`/`Paged` matrices stay
/// logically identical to their dense counterparts under every operation.
#[derive(Debug, Clone)]
pub(crate) enum MatrixStore {
    Dense(WordStore),
    Rrr(RrrMatrix),
    Paged(PagedWords),
}

/// An `m × B` bit matrix holding one repetition's BFUs column-wise.
#[derive(Debug, Clone)]
pub(crate) struct BfuMatrix {
    /// Filter length in bits (`m`) — the number of rows.
    m_bits: usize,
    /// Number of BFUs (`B`) — the number of columns.
    buckets: usize,
    /// Words per row (`⌈B/64⌉`).
    row_words: usize,
    /// Row-major bit storage — dense (owned or zero-copy view),
    /// RRR-compressed, or file-backed paged.
    store: MatrixStore,
}

/// Equality is *logical* (same bits at the same geometry), regardless of
/// storage backend — a compressed or paged matrix equals its dense source.
impl PartialEq for BfuMatrix {
    fn eq(&self, other: &Self) -> bool {
        if self.m_bits != other.m_bits || self.buckets != other.buckets {
            return false;
        }
        if let (MatrixStore::Dense(a), MatrixStore::Dense(b)) = (&self.store, &other.store) {
            return a.as_words() == b.as_words();
        }
        let rw = self.row_words;
        let (mut ra, mut rb) = (vec![0u64; rw], vec![0u64; rw]);
        (0..self.m_bits).all(|p| {
            self.row_into(p, &mut ra);
            other.row_into(p, &mut rb);
            ra == rb
        })
    }
}

impl Eq for BfuMatrix {}

/// Parsed fixed-size matrix header (shared by the copying and zero-copy
/// decode paths). The cursor is left at the first payload word.
struct MatrixHeader {
    m_bits: usize,
    buckets: usize,
    row_words: usize,
    n_words: usize,
    payload_len: usize,
}

impl BfuMatrix {
    pub(crate) fn new(m_bits: usize, buckets: usize) -> Self {
        assert!(m_bits > 0 && buckets > 0);
        let row_words = buckets.div_ceil(64);
        Self {
            m_bits,
            buckets,
            row_words,
            store: MatrixStore::Dense(vec![0; m_bits * row_words].into()),
        }
    }

    /// Wrap a decoded RRR payload.
    fn from_rrr(rrr: RrrMatrix) -> Self {
        Self {
            m_bits: rrr.m_bits(),
            buckets: rrr.buckets(),
            row_words: rrr.row_words(),
            store: MatrixStore::Rrr(rrr),
        }
    }

    pub(crate) fn m_bits(&self) -> usize {
        self.m_bits
    }

    pub(crate) fn buckets(&self) -> usize {
        self.buckets
    }

    /// True when the word payload is a zero-copy view into a shared buffer.
    pub(crate) fn is_view(&self) -> bool {
        matches!(&self.store, MatrixStore::Dense(ws) if ws.is_view())
    }

    /// True when rows are stored RRR-compressed.
    pub(crate) fn is_compressed(&self) -> bool {
        matches!(self.store, MatrixStore::Rrr(_))
    }

    /// True when the word payload is file-backed (faulted on demand).
    #[allow(dead_code)] // diagnostic helper; exercised by tests
    pub(crate) fn is_paged(&self) -> bool {
        matches!(self.store, MatrixStore::Paged(_))
    }

    /// Does the word payload live inside `buf`? (Diagnostic for the
    /// zero-copy load path; owned/compressed/paged matrices answer `false`.)
    pub(crate) fn payload_borrows(&self, buf: &[u8]) -> bool {
        let MatrixStore::Dense(ws) = &self.store else {
            return false;
        };
        if !ws.is_view() {
            return false;
        }
        let range = buf.as_ptr_range();
        let words = ws.as_words();
        let start = words.as_ptr().cast::<u8>();
        // `range.end` is one-past-the-end, so a payload ending exactly at
        // the buffer end is still inside.
        range.contains(&start) && words.as_ptr_range().end.cast::<u8>() <= range.end
    }

    /// The dense word payload. Only valid on `Dense` storage — callers on
    /// generic paths use [`BfuMatrix::row_into`] instead.
    #[inline]
    fn dense_words(&self) -> &[u64] {
        match &self.store {
            MatrixStore::Dense(ws) => ws.as_words(),
            _ => unreachable!("dense_words on compressed/paged storage"),
        }
    }

    #[inline]
    fn row(&self, p: usize) -> &[u64] {
        &self.dense_words()[p * self.row_words..(p + 1) * self.row_words]
    }

    /// Copy row `p` into `out` (`row_words` words), whatever the backend.
    /// Bits at positions `≥ buckets` in the final word come out zero even
    /// for paged payloads (whose on-disk tails are not pre-validated).
    pub(crate) fn row_into(&self, p: usize, out: &mut [u64]) {
        debug_assert_eq!(out.len(), self.row_words);
        match &self.store {
            MatrixStore::Dense(_) => out.copy_from_slice(self.row(p)),
            MatrixStore::Rrr(rrr) => rrr.decode_row_into(p, out),
            MatrixStore::Paged(pw) => {
                out.copy_from_slice(&pw.read(p * self.row_words, self.row_words));
                mask_tail(out, self.buckets);
            }
        }
    }

    /// Read one bit, whatever the backend.
    #[inline]
    pub(crate) fn bit(&self, p: usize, bucket: usize) -> bool {
        let (word, shift) = (bucket / 64, bucket % 64);
        match &self.store {
            MatrixStore::Dense(ws) => (ws.as_words()[p * self.row_words + word] >> shift) & 1 == 1,
            MatrixStore::Rrr(rrr) => rrr.get(p, bucket),
            MatrixStore::Paged(pw) => (pw.read_word(p * self.row_words + word) >> shift) & 1 == 1,
        }
    }

    /// Materialize owned dense storage (decode / page in all rows). No-op
    /// for matrices that are already dense.
    fn materialize(&mut self) {
        if matches!(self.store, MatrixStore::Dense(_)) {
            return;
        }
        let rw = self.row_words;
        let mut words = vec![0u64; self.m_bits * rw];
        for (p, row) in words.chunks_exact_mut(rw).enumerate() {
            self.row_into(p, row);
        }
        self.store = MatrixStore::Dense(words.into());
    }

    /// Mutable dense words — materializes compressed/paged storage and
    /// promotes views to owned first (copy-on-write).
    fn words_mut(&mut self) -> &mut Vec<u64> {
        self.materialize();
        match &mut self.store {
            MatrixStore::Dense(ws) => ws.to_mut(),
            _ => unreachable!("materialize produced dense storage"),
        }
    }

    /// Convert storage to RRR-compressed rows (materializing dense words
    /// first if needed). Build-time only: any later mutation materializes
    /// back to dense via [`BfuMatrix::words_mut`].
    pub(crate) fn compress_rrr(&mut self) {
        self.materialize();
        let rrr = RrrMatrix::from_words(self.dense_words(), self.m_bits, self.buckets);
        self.store = MatrixStore::Rrr(rrr);
    }

    /// Set the `eta` filter bits of one term in one BFU (Algorithm 1's
    /// `Insert(x, RAMBO[φ_d(x), d])`).
    #[inline]
    pub(crate) fn insert(&mut self, bucket: usize, pair: HashPair, eta: u32) {
        debug_assert!(bucket < self.buckets);
        let m = self.m_bits as u64;
        let row_words = self.row_words;
        let words = self.words_mut();
        for i in 0..eta {
            let p = pair.index(i, m) as usize;
            words[p * row_words + bucket / 64] |= 1u64 << (bucket % 64);
        }
    }

    /// Set one bucket's bit in every listed filter row. The batch engine
    /// stages rows pre-sorted so this walks the row-major storage
    /// monotonically — sequential cache lines instead of the term-order
    /// hopping of repeated [`BfuMatrix::insert`] calls.
    #[inline]
    pub(crate) fn set_rows(&mut self, bucket: usize, rows: &[usize]) {
        debug_assert!(bucket < self.buckets);
        let word = bucket / 64;
        let bit = 1u64 << (bucket % 64);
        let row_words = self.row_words;
        let m_bits = self.m_bits;
        let words = self.words_mut();
        for &p in rows {
            debug_assert!(p < m_bits);
            words[p * row_words + word] |= bit;
        }
    }

    /// Which BFUs contain *all* the given terms: AND of the probed rows,
    /// written into `mask` (a `B`-bit vector). This is the whole per-table
    /// probe phase of Algorithm 2.
    ///
    /// Three optimizations over the row-at-a-time loop:
    /// * duplicate [`HashPair`]s (a term repeated across the query) are
    ///   probed once;
    /// * up to four rows are fused into each pass over the mask
    ///   ([`BitVec::and_rows_any`]), keeping the running mask in registers;
    /// * the table is abandoned the moment the mask goes all-zero — AND can
    ///   only clear bits, so the remaining rows cannot change the answer.
    pub(crate) fn probe_all_into(&self, pairs: &[HashPair], eta: u32, mask: &mut BitVec) {
        debug_assert_eq!(mask.len(), self.buckets);
        // set_all keeps the tail bits beyond B zeroed (BitVec invariant), and
        // AND can only clear bits, so the mask stays well-formed throughout —
        // including against paged rows whose on-disk tails are unvalidated.
        mask.set_all();
        let m = self.m_bits as u64;
        let rw = self.row_words;
        let words = match &self.store {
            MatrixStore::Dense(ws) => ws.as_words(),
            MatrixStore::Rrr(rrr) => {
                // Cold tier: decode each probed row block-wise into scratch
                // and AND it straight into the mask, with the same
                // dedup + dead-mask early exit as the dense path.
                let mut scratch = vec![0u64; rw];
                for (i, pair) in pairs.iter().enumerate() {
                    if pairs[..i].contains(pair) {
                        continue;
                    }
                    for j in 0..eta {
                        rrr.decode_row_into(pair.index(j, m) as usize, &mut scratch);
                        if !mask.and_words_any(&scratch) {
                            return;
                        }
                    }
                }
                return;
            }
            MatrixStore::Paged(pw) => {
                // Paged tier: each probed row is one in-page slice; the
                // fault cost dominates, so no 4-row staging here.
                for (i, pair) in pairs.iter().enumerate() {
                    if pairs[..i].contains(pair) {
                        continue;
                    }
                    for j in 0..eta {
                        let row = pw.read(pair.index(j, m) as usize * rw, rw);
                        if !mask.and_words_any(&row) {
                            return;
                        }
                    }
                }
                return;
            }
        };
        let mut staged = [0usize; 4];
        let mut n = 0;
        for (i, pair) in pairs.iter().enumerate() {
            if pairs[..i].contains(pair) {
                continue; // duplicate term: same rows, AND is idempotent
            }
            for j in 0..eta {
                staged[n] = pair.index(j, m) as usize * rw;
                n += 1;
                if n == 4 {
                    n = 0;
                    if !mask.and_rows_any([
                        &words[staged[0]..staged[0] + rw],
                        &words[staged[1]..staged[1] + rw],
                        &words[staged[2]..staged[2] + rw],
                        &words[staged[3]..staged[3] + rw],
                    ]) {
                        return; // mask is dead; nothing can revive it
                    }
                }
            }
        }
        match n {
            1 => {
                mask.and_rows_any([&words[staged[0]..staged[0] + rw]]);
            }
            2 => {
                mask.and_rows_any([
                    &words[staged[0]..staged[0] + rw],
                    &words[staged[1]..staged[1] + rw],
                ]);
            }
            3 => {
                mask.and_rows_any([
                    &words[staged[0]..staged[0] + rw],
                    &words[staged[1]..staged[1] + rw],
                    &words[staged[2]..staged[2] + rw],
                ]);
            }
            _ => {}
        }
    }

    /// Materialize each pair's *own* bucket mask:
    /// `out[i * row_words..][..row_words]` becomes the AND of pair `i`'s
    /// `eta` rows — which BFUs contain that term. Unlike
    /// [`BfuMatrix::probe_all_into`] the masks stay separate (the shape the
    /// batch evaluator's per-term memo stores), and the row loads of up to
    /// four pairs are interleaved so their random-access cache misses
    /// overlap instead of serializing: a cold memo fill is latency-bound,
    /// and term-at-a-time probing leaves the memory pipeline idle.
    pub(crate) fn probe_pairs_into(&self, pairs: &[HashPair], eta: u32, out: &mut [u64]) {
        let rw = self.row_words;
        debug_assert_eq!(out.len(), pairs.len() * rw);
        if eta == 0 {
            // Zero filter bits per term: every bucket matches (the same
            // all-ones-with-zero-tail mask `probe_all_into` starts from).
            let tail = self.buckets % 64;
            for mask in out.chunks_exact_mut(rw) {
                mask.fill(!0u64);
                if tail != 0 {
                    mask[rw - 1] = (1u64 << tail) - 1;
                }
            }
            return;
        }
        let m = self.m_bits as u64;
        let words = match &self.store {
            MatrixStore::Dense(ws) => ws.as_words(),
            _ => {
                // Compressed/paged tiers: copy the first row (tail-masked by
                // `row_into`), then AND the remaining rows in — correctness
                // over lane interleaving off the dense fast path.
                let mut scratch = vec![0u64; rw];
                for (i, pair) in pairs.iter().enumerate() {
                    let out_row = &mut out[i * rw..(i + 1) * rw];
                    self.row_into(pair.index(0, m) as usize, out_row);
                    for j in 1..eta {
                        self.row_into(pair.index(j, m) as usize, &mut scratch);
                        for (dst, s) in out_row.iter_mut().zip(&scratch) {
                            *dst &= s;
                        }
                    }
                }
                return;
            }
        };
        const LANES: usize = 4;
        let mut offs = [0usize; LANES];
        for (chunk_i, chunk) in pairs.chunks(LANES).enumerate() {
            let base = chunk_i * LANES * rw;
            // First row of every lane, offsets computed before any load so
            // the loads issue back to back with no dependencies between
            // them; then each later row is ANDed in, again lane-interleaved.
            for (g, pair) in chunk.iter().enumerate() {
                offs[g] = pair.index(0, m) as usize * rw;
            }
            for g in 0..chunk.len() {
                out[base + g * rw..base + (g + 1) * rw]
                    .copy_from_slice(&words[offs[g]..offs[g] + rw]);
            }
            for j in 1..eta {
                for (g, pair) in chunk.iter().enumerate() {
                    offs[g] = pair.index(j, m) as usize * rw;
                }
                for g in 0..chunk.len() {
                    let row = &words[offs[g]..offs[g] + rw];
                    for (dst, r) in out[base + g * rw..base + (g + 1) * rw].iter_mut().zip(row) {
                        *dst &= r;
                    }
                }
            }
        }
    }

    /// Does one BFU contain all the terms? Used by RAMBO+ for memoized
    /// candidate-bucket probes.
    #[inline]
    pub(crate) fn probe_bucket(&self, bucket: usize, pairs: &[HashPair], eta: u32) -> bool {
        debug_assert!(bucket < self.buckets);
        let m = self.m_bits as u64;
        pairs
            .iter()
            .all(|pair| (0..eta).all(|i| self.bit(pair.index(i, m) as usize, bucket)))
    }

    /// Extract one BFU's bits as a standalone filter image (column slice).
    /// O(m) — used for stats, tests and cross-checks, not on query paths.
    pub(crate) fn column(&self, bucket: usize) -> BitVec {
        assert!(bucket < self.buckets);
        BitVec::from_ones(
            self.m_bits,
            (0..self.m_bits).filter(|&p| self.bit(p, bucket)),
        )
    }

    /// Set-bit count of every column in one sequential matrix pass, via the
    /// bit-sliced vertical counters of [`kernel::ColumnCounter`] — 64
    /// columns advance per word operation, with no per-set-bit extraction.
    pub(crate) fn column_ones(&self) -> Vec<usize> {
        let mut cc = kernel::ColumnCounter::new(self.row_words);
        if let MatrixStore::Dense(_) = &self.store {
            for p in 0..self.m_bits {
                cc.add_row(self.row(p));
            }
        } else {
            let mut scratch = vec![0u64; self.row_words];
            for p in 0..self.m_bits {
                self.row_into(p, &mut scratch);
                cc.add_row(&scratch);
            }
        }
        let mut counts = cc.counts();
        counts.truncate(self.buckets);
        counts
    }

    /// Fraction of set bits in one BFU column.
    #[allow(dead_code)] // diagnostic helper; exercised by tests
    pub(crate) fn column_fill(&self, bucket: usize) -> f64 {
        let ones = (0..self.m_bits).filter(|&p| self.bit(p, bucket)).count();
        ones as f64 / self.m_bits as f64
    }

    /// Fold-over (§5.3): merge column `b + B/2` into column `b` for every
    /// row; the matrix narrows to `B/2` columns. Always produces owned
    /// storage (the fold rebuilds the payload anyway, so folding a viewed
    /// matrix costs no extra copy).
    ///
    /// # Errors
    /// [`RamboError::FoldUnavailable`] when `B` is odd or below 4.
    pub(crate) fn fold_once(&mut self) -> Result<(), RamboError> {
        if !self.buckets.is_multiple_of(2) {
            return Err(RamboError::FoldUnavailable(format!(
                "bucket count {} is odd",
                self.buckets
            )));
        }
        if self.buckets < 4 {
            return Err(RamboError::FoldUnavailable(format!(
                "folding below 2 buckets (current {}) would collapse the partition",
                self.buckets
            )));
        }
        let half = self.buckets / 2;
        let new_row_words = half.div_ceil(64);
        // The fold walks every row anyway, so compressed/paged storage is
        // materialized up front (folding belongs to the build phase).
        self.materialize();
        let mut new_words = vec![0u64; self.m_bits * new_row_words];
        for p in 0..self.m_bits {
            let row = self.row(p);
            let dst = &mut new_words[p * new_row_words..(p + 1) * new_row_words];
            // Low half: bits [0, half).
            for (w, d) in dst.iter_mut().enumerate() {
                *d = row[w];
            }
            mask_tail(dst, half);
            // High half: bits [half, 2·half) shifted down by `half`.
            let shift = half % 64;
            let word_off = half / 64;
            for w in 0..new_row_words {
                let lo = row[word_off + w] >> shift;
                let hi = if shift == 0 {
                    0
                } else {
                    row.get(word_off + w + 1).map_or(0, |x| x << (64 - shift))
                };
                dst[w] |= lo | hi;
            }
            mask_tail(dst, half);
        }
        self.buckets = half;
        self.row_words = new_row_words;
        self.store = MatrixStore::Dense(new_words.into());
        Ok(())
    }

    /// Stacking (§5.3, Figure 3): copy `src`'s columns into this matrix at
    /// column offset `dst_offset` (OR-ing; the window is expected empty).
    ///
    /// # Panics
    /// Panics on row-count mismatch or column overflow.
    pub(crate) fn copy_columns_from(&mut self, src: &Self, dst_offset: usize) {
        assert_eq!(self.m_bits, src.m_bits, "row counts must match");
        assert!(dst_offset + src.buckets <= self.buckets, "column overflow");
        let shift = dst_offset % 64;
        let word_off = dst_offset / 64;
        let (dst_rw, src_rw) = (self.row_words, src.row_words);
        let m_bits = self.m_bits;
        // Non-dense sources stream row by row through scratch; the common
        // stacking path (dense shard into dense global) stays a slice walk.
        let mut scratch = vec![0u64; src_rw];
        let dense_src = match &src.store {
            MatrixStore::Dense(ws) => Some(ws.as_words()),
            _ => None,
        };
        let dst_words = self.words_mut();
        for p in 0..m_bits {
            let src_row: &[u64] = match dense_src {
                Some(words) => &words[p * src_rw..(p + 1) * src_rw],
                None => {
                    src.row_into(p, &mut scratch);
                    &scratch
                }
            };
            let dst_row = &mut dst_words[p * dst_rw..(p + 1) * dst_rw];
            for (w, &sw) in src_row.iter().enumerate() {
                if sw == 0 {
                    continue;
                }
                dst_row[word_off + w] |= sw << shift;
                if shift != 0 && word_off + w + 1 < dst_row.len() {
                    dst_row[word_off + w + 1] |= sw >> (64 - shift);
                }
            }
            // Clear any bits that spilled past the window (src tail bits are
            // zero by construction, so nothing to clean in practice).
        }
    }

    /// OR another same-geometry matrix into this one — the merge step of a
    /// document-sharded build ([`crate::pipeline`]): partial indexes built
    /// with the same seed set disjoint documents' bits into the same
    /// `m × B` grid, so their union is exactly the monolithic matrix.
    ///
    /// # Panics
    /// Panics on geometry mismatch.
    pub(crate) fn merge_or(&mut self, src: &Self) {
        assert_eq!(self.m_bits, src.m_bits, "row counts must match");
        assert_eq!(self.buckets, src.buckets, "column counts must match");
        let rw = self.row_words;
        let dst_words = self.words_mut();
        if let MatrixStore::Dense(ws) = &src.store {
            for (d, &s) in dst_words.iter_mut().zip(ws.as_words()) {
                *d |= s;
            }
        } else {
            let mut scratch = vec![0u64; rw];
            for (p, dst_row) in dst_words.chunks_exact_mut(rw).enumerate() {
                src.row_into(p, &mut scratch);
                for (d, &s) in dst_row.iter_mut().zip(&scratch) {
                    *d |= s;
                }
            }
        }
    }

    /// Total set bits (diagnostics).
    #[allow(dead_code)] // diagnostic helper; exercised by tests
    pub(crate) fn count_ones(&self) -> usize {
        match &self.store {
            MatrixStore::Dense(ws) => kernel::popcount(ws.as_words()),
            MatrixStore::Rrr(rrr) => rrr.count_ones(),
            MatrixStore::Paged(_) => {
                let mut scratch = vec![0u64; self.row_words];
                (0..self.m_bits)
                    .map(|p| {
                        self.row_into(p, &mut scratch);
                        kernel::popcount(&scratch)
                    })
                    .sum()
            }
        }
    }

    /// Resident bytes of the matrix payload. A view's borrowed payload
    /// counts toward its backing buffer; a compressed matrix reports its
    /// encoded footprint; a paged matrix reports its *logical* word extent
    /// (the on-disk payload it addresses — cache residency is accounted by
    /// the shared [`PagedFile`], not per matrix).
    pub(crate) fn size_bytes(&self) -> usize {
        match &self.store {
            MatrixStore::Dense(ws) => ws.len() * 8,
            MatrixStore::Rrr(rrr) => rrr.size_bytes(),
            MatrixStore::Paged(pw) => pw.len() * 8,
        }
    }

    /// Append the binary encoding. Dense and paged matrices write the
    /// `RBFM` framing: the word payload is preceded by a pad byte plus up
    /// to 7 zero bytes so it lands 8-byte-aligned *relative to the start of
    /// `out`* — containers that keep that origin (index files) can be
    /// re-opened zero-copy via [`BfuMatrix::decode_view`]. Compressed
    /// matrices write the `RBFR` framing of [`RrrMatrix`] instead (also a
    /// whole number of words), which every decode path dispatches on by
    /// magic.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        match &self.store {
            MatrixStore::Dense(ws) => {
                out.put_slice(MAGIC);
                out.put_u64_le(self.m_bits as u64);
                out.put_u64_le(self.buckets as u64);
                write_word_padding(out);
                for &w in ws.as_words() {
                    out.put_u64_le(w);
                }
            }
            MatrixStore::Rrr(rrr) => rrr.encode_into(out),
            MatrixStore::Paged(_) => {
                // Stream the on-disk rows back out as a dense record.
                out.put_slice(MAGIC);
                out.put_u64_le(self.m_bits as u64);
                out.put_u64_le(self.buckets as u64);
                write_word_padding(out);
                let mut scratch = vec![0u64; self.row_words];
                for p in 0..self.m_bits {
                    self.row_into(p, &mut scratch);
                    for &w in &scratch {
                        out.put_u64_le(w);
                    }
                }
            }
        }
    }

    /// Parse the fixed header and padding, advancing `buf` to the payload.
    fn decode_header(buf: &mut &[u8]) -> Result<MatrixHeader, RamboError> {
        if buf.remaining() < HEADER_BYTES {
            return Err(DecodeError::new("bfu matrix header truncated").into());
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::new("bad bfu matrix magic").into());
        }
        let m_bits = usize::try_from(buf.get_u64_le())
            .map_err(|_| DecodeError::new("matrix rows exceed address space"))?;
        let buckets = usize::try_from(buf.get_u64_le())
            .map_err(|_| DecodeError::new("matrix columns exceed address space"))?;
        if m_bits == 0 || buckets == 0 {
            return Err(DecodeError::new("matrix with zero dimension").into());
        }
        skip_word_padding(buf)?;
        let row_words = buckets.div_ceil(64);
        let n_words = m_bits
            .checked_mul(row_words)
            .ok_or_else(|| DecodeError::new("matrix size overflow"))?;
        let payload_len = n_words
            .checked_mul(8)
            .ok_or_else(|| DecodeError::new("matrix size overflow"))?;
        // NOTE: the payload-presence check lives in the callers — the paged
        // open path parses this header from a short prefix read and must not
        // require the payload bytes to be in memory.
        Ok(MatrixHeader {
            m_bits,
            buckets,
            row_words,
            n_words,
            payload_len,
        })
    }

    /// Reject payloads whose rows set bits beyond `buckets`.
    fn check_row_tails(
        words: &[u64],
        m_bits: usize,
        row_words: usize,
        buckets: usize,
    ) -> Result<(), RamboError> {
        let tail = buckets % 64;
        if tail != 0 {
            let mask = !((1u64 << tail) - 1);
            for p in 0..m_bits {
                if words[p * row_words + row_words - 1] & mask != 0 {
                    return Err(DecodeError::new("matrix row tail bits set").into());
                }
            }
        }
        Ok(())
    }

    /// Decode, advancing the buffer. Copies the payload into owned storage.
    /// Dispatches on magic: `RBFM` records decode dense, `RBFR` records
    /// decode into RRR-compressed storage.
    pub(crate) fn decode_from(buf: &mut &[u8]) -> Result<Self, RamboError> {
        if buf.len() >= 4 && buf[..4] == RrrMatrix::MAGIC {
            let rrr = RrrMatrix::decode_from(buf)?;
            return Ok(Self::from_rrr(rrr));
        }
        let h = Self::decode_header(buf)?;
        if buf.remaining() < h.payload_len {
            return Err(DecodeError::new("bfu matrix payload truncated").into());
        }
        // Bulk chunked decode of the word payload (one pass, no per-element
        // cursor bookkeeping).
        let mut words = Vec::with_capacity(h.n_words);
        words.extend(
            buf[..h.payload_len]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8"))),
        );
        buf.advance(h.payload_len);
        Self::check_row_tails(&words, h.m_bits, h.row_words, h.buckets)?;
        Ok(Self {
            m_bits: h.m_bits,
            buckets: h.buckets,
            row_words: h.row_words,
            store: MatrixStore::Dense(words.into()),
        })
    }

    /// Zero-copy decode: parse the header at byte `*pos` of `buf` and
    /// borrow the word payload in place (no word copies; validation reads
    /// one word per row for the tail check). Advances `*pos` past the
    /// consumed bytes.
    ///
    /// # Errors
    /// [`RamboError::Decode`] on any format violation, or when the payload
    /// is not 8-byte-aligned in memory (e.g. the index was embedded at an
    /// unaligned offset — fall back to [`BfuMatrix::decode_from`]).
    pub(crate) fn decode_view(buf: &Arc<[u8]>, pos: &mut usize) -> Result<Self, RamboError> {
        let mut slice: &[u8] = buf
            .get(*pos..)
            .ok_or_else(|| DecodeError::new("matrix offset out of range"))?;
        if slice.len() >= 4 && slice[..4] == RrrMatrix::MAGIC {
            // Compressed records have no zero-copy form: the (class, offset)
            // streams are decoded into an owned RrrMatrix.
            let before = slice.len();
            let rrr = RrrMatrix::decode_from(&mut slice)?;
            *pos += before - slice.len();
            return Ok(Self::from_rrr(rrr));
        }
        let before = slice.len();
        let h = Self::decode_header(&mut slice)?;
        if slice.remaining() < h.payload_len {
            return Err(DecodeError::new("bfu matrix payload truncated").into());
        }
        let word_start = *pos + (before - slice.len());
        let view = WordView::new(buf.clone(), word_start, h.n_words)?;
        Self::check_row_tails(view.as_words(), h.m_bits, h.row_words, h.buckets)?;
        *pos = word_start + h.payload_len;
        Ok(Self {
            m_bits: h.m_bits,
            buckets: h.buckets,
            row_words: h.row_words,
            store: MatrixStore::Dense(WordStore::View(view)),
        })
    }

    /// File-backed decode: parse the matrix record at byte `*pos` of `file`
    /// reading only its header (one short read), and leave the dense word
    /// payload on disk behind a [`PagedWords`] that faults row-aligned
    /// blocks through `file`'s shared cache, charging traffic to
    /// `counters`. Compressed (`RBFR`) records are decoded eagerly — they
    /// are small by construction (that is why the tier was compressed) and
    /// RRR probes need the class/offset streams resident anyway. Advances
    /// `*pos` past the record.
    ///
    /// Paged payload rows are *not* tail-validated at open (that would read
    /// every row, defeating the O(metadata) open); instead
    /// [`BfuMatrix::row_into`] masks tail bits on every fault, so dirty
    /// on-disk tails cannot reach a probe mask.
    pub(crate) fn decode_paged(
        file: &Arc<PagedFile>,
        pos: &mut u64,
        counters: &Arc<BlockCacheCounters>,
    ) -> Result<Self, RamboError> {
        let remaining = file.len().saturating_sub(*pos);
        // Enough for either header: RBFM needs HEADER_BYTES + 7 pad bytes
        // (28), RBFR's peek needs its 28-byte fixed prefix + pad (36).
        let head_len = 36.min(remaining as usize);
        let head = file
            .read_bytes(*pos, head_len)
            .map_err(|e| DecodeError::new(format!("catalog read: {e}")))?;
        if head.len() >= 4 && head[..4] == RrrMatrix::MAGIC {
            let total = RrrMatrix::peek_encoded_len(&head)?;
            if total as u64 > remaining {
                return Err(DecodeError::new("rrr matrix record truncated").into());
            }
            let record = file
                .read_bytes(*pos, total)
                .map_err(|e| DecodeError::new(format!("catalog read: {e}")))?;
            let mut slice = record.as_slice();
            let rrr = RrrMatrix::decode_from(&mut slice)?;
            *pos += total as u64;
            return Ok(Self::from_rrr(rrr));
        }
        let mut slice = head.as_slice();
        let before = slice.len();
        let h = Self::decode_header(&mut slice)?;
        let word_start = *pos + (before - slice.len()) as u64;
        let end = word_start
            .checked_add(h.payload_len as u64)
            .ok_or_else(|| DecodeError::new("matrix size overflow"))?;
        if end > file.len() {
            return Err(DecodeError::new("bfu matrix payload truncated").into());
        }
        let paged = PagedWords::new(
            file.clone(),
            word_start,
            h.n_words,
            h.row_words,
            counters.clone(),
        )?;
        *pos = end;
        Ok(Self {
            m_bits: h.m_bits,
            buckets: h.buckets,
            row_words: h.row_words,
            store: MatrixStore::Paged(paged),
        })
    }
}

/// Zero bits at positions `>= len` in the final word of a row.
fn mask_tail(row: &mut [u64], len: usize) {
    let tail = len % 64;
    if tail != 0 {
        if let Some(last) = row.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(t: u64) -> HashPair {
        HashPair::of_u64(t, 99)
    }

    #[test]
    fn insert_probe_roundtrip() {
        let mut m = BfuMatrix::new(1 << 10, 70); // >64 columns: two words/row
        m.insert(3, pair(1), 2);
        m.insert(68, pair(2), 2);
        assert!(m.probe_bucket(3, &[pair(1)], 2));
        assert!(m.probe_bucket(68, &[pair(2)], 2));
        assert!(!m.probe_bucket(3, &[pair(2)], 2));
        assert!(!m.probe_bucket(0, &[pair(1)], 2));
    }

    #[test]
    fn probe_all_matches_per_bucket_probes() {
        let mut m = BfuMatrix::new(1 << 12, 130);
        for b in 0..130usize {
            for t in 0..(b as u64 % 7) {
                m.insert(b, pair(t), 3);
            }
        }
        let mut mask = BitVec::zeros(130);
        for t in 0..7u64 {
            m.probe_all_into(&[pair(t)], 3, &mut mask);
            for b in 0..130usize {
                assert_eq!(
                    mask.get(b),
                    m.probe_bucket(b, &[pair(t)], 3),
                    "term {t} bucket {b}"
                );
            }
        }
    }

    /// The fused/staged kernel path must agree with per-bucket probes for
    /// every pair-count arity (1..=5 pairs × η rows exercises every
    /// remainder branch of the 4-row staging loop).
    #[test]
    fn probe_all_arity_sweep() {
        let mut m = BfuMatrix::new(1 << 12, 70);
        for b in 0..70usize {
            for t in 0..10u64 {
                if !(b as u64 + t).is_multiple_of(3) {
                    m.insert(b, pair(t), 3);
                }
            }
        }
        let mut mask = BitVec::zeros(70);
        for n_pairs in 1..=5usize {
            for eta in 1..=5u32 {
                let pairs: Vec<HashPair> = (0..n_pairs as u64).map(pair).collect();
                m.probe_all_into(&pairs, eta, &mut mask);
                for b in 0..70usize {
                    assert_eq!(
                        mask.get(b),
                        m.probe_bucket(b, &pairs, eta),
                        "pairs {n_pairs} eta {eta} bucket {b}"
                    );
                }
            }
        }
    }

    /// Duplicate pairs (a term repeated across the query) must not change
    /// the result — they are deduplicated before the kernel loop.
    #[test]
    fn probe_all_dedupes_repeated_pairs() {
        let mut m = BfuMatrix::new(1 << 12, 66);
        for b in 0..66usize {
            m.insert(b, pair(b as u64 % 5), 3);
        }
        let mut plain = BitVec::zeros(66);
        let mut duped = BitVec::zeros(66);
        m.probe_all_into(&[pair(1), pair(2)], 3, &mut plain);
        m.probe_all_into(
            &[pair(1), pair(2), pair(1), pair(1), pair(2)],
            3,
            &mut duped,
        );
        assert_eq!(plain, duped);
    }

    #[test]
    fn multi_term_probe_is_conjunctive() {
        let mut m = BfuMatrix::new(1 << 12, 16);
        m.insert(5, pair(10), 2);
        m.insert(5, pair(11), 2);
        m.insert(9, pair(10), 2);
        let mut mask = BitVec::zeros(16);
        m.probe_all_into(&[pair(10), pair(11)], 2, &mut mask);
        assert!(mask.get(5));
        assert!(!mask.get(9) || m.probe_bucket(9, &[pair(11)], 2));
    }

    #[test]
    fn probe_all_on_empty_matrix_dies_early() {
        let m = BfuMatrix::new(1 << 10, 40);
        let mut mask = BitVec::zeros(40);
        m.probe_all_into(&[pair(1), pair(2), pair(3)], 4, &mut mask);
        assert!(mask.none());
    }

    #[test]
    fn column_extraction_matches_inserts() {
        let mut m = BfuMatrix::new(4096, 10);
        m.insert(7, pair(42), 4);
        let col = m.column(7);
        let expected: Vec<usize> = (0..4).map(|i| pair(42).index(i, 4096) as usize).collect();
        for p in expected {
            assert!(col.get(p));
        }
        assert!(m.column(6).none());
        assert!(m.column_fill(7) > 0.0);
        assert_eq!(m.column_fill(6), 0.0);
    }

    #[test]
    fn column_ones_matches_column_extraction() {
        let mut m = BfuMatrix::new(2048, 130);
        for b in 0..130usize {
            for t in 0..(b as u64 % 9) {
                m.insert(b, pair(t * 31 + b as u64), 3);
            }
        }
        let counts = m.column_ones();
        assert_eq!(counts.len(), 130);
        for (b, &count) in counts.iter().enumerate() {
            assert_eq!(count, m.column(b).count_ones(), "column {b}");
        }
    }

    #[test]
    fn fold_merges_column_pairs() {
        for b in [8usize, 70, 128, 130] {
            let mut m = BfuMatrix::new(2048, b);
            // Distinct term per bucket.
            for col in 0..b {
                m.insert(col, pair(col as u64), 2);
            }
            let before: Vec<BitVec> = (0..b).map(|c| m.column(c)).collect();
            m.fold_once().unwrap();
            assert_eq!(m.buckets(), b / 2);
            for c in 0..b / 2 {
                let mut expect = before[c].clone();
                expect.or_assign(&before[c + b / 2]);
                assert_eq!(m.column(c), expect, "B={b} col {c}");
            }
        }
    }

    #[test]
    fn fold_guards() {
        let mut odd = BfuMatrix::new(64, 7);
        assert!(odd.fold_once().is_err());
        let mut tiny = BfuMatrix::new(64, 2);
        assert!(tiny.fold_once().is_err());
    }

    #[test]
    fn stacking_copies_column_windows() {
        // Three shards of 5 columns each → 15-column global, offsets 0/5/10
        // (exercises non-word-aligned shifts).
        let mut global = BfuMatrix::new(1024, 15);
        let mut shards = Vec::new();
        for node in 0..3u64 {
            let mut s = BfuMatrix::new(1024, 5);
            for col in 0..5usize {
                s.insert(col, pair(node * 100 + col as u64), 3);
            }
            shards.push(s);
        }
        for (node, s) in shards.iter().enumerate() {
            global.copy_columns_from(s, node * 5);
        }
        for (node, s) in shards.iter().enumerate() {
            for col in 0..5usize {
                assert_eq!(
                    global.column(node * 5 + col),
                    s.column(col),
                    "node {node} col {col}"
                );
            }
        }
    }

    #[test]
    fn stacking_across_word_boundaries() {
        let mut global = BfuMatrix::new(512, 200);
        let mut src = BfuMatrix::new(512, 90);
        for col in (0..90).step_by(7) {
            src.insert(col, pair(col as u64), 2);
        }
        global.copy_columns_from(&src, 60); // offset 60, spans words 0..3
        for col in 0..90 {
            assert_eq!(global.column(60 + col), src.column(col), "col {col}");
        }
        assert_eq!(global.count_ones(), src.count_ones());
    }

    #[test]
    fn serialization_roundtrip() {
        let mut m = BfuMatrix::new(2048, 77);
        for t in 0..50u64 {
            m.insert((t % 77) as usize, pair(t), 3);
        }
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let mut slice = buf.as_slice();
        let back = BfuMatrix::decode_from(&mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(m, back);
    }

    #[test]
    fn encoded_payload_is_aligned() {
        let m = BfuMatrix::new(64, 10);
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let pad = buf[20] as usize;
        assert_eq!((HEADER_BYTES + pad) % 8, 0);
    }

    #[test]
    fn serialization_rejects_corruption() {
        let m = BfuMatrix::new(64, 10);
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(BfuMatrix::decode_from(&mut bad.as_slice()).is_err());
        assert!(BfuMatrix::decode_from(&mut &buf[..10]).is_err());
        // Dirty tail bits.
        let mut dirty = buf.clone();
        let last = dirty.len() - 1;
        dirty[last] |= 0x80; // bit 63 of a 10-column row
        assert!(BfuMatrix::decode_from(&mut dirty.as_slice()).is_err());
    }

    #[test]
    fn view_decode_matches_owned_and_borrows() {
        let mut m = BfuMatrix::new(1024, 70);
        for t in 0..60u64 {
            m.insert((t % 70) as usize, pair(t), 3);
        }
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let total = buf.len();
        let arc: Arc<[u8]> = buf.into();
        if !(arc.as_ptr() as usize).is_multiple_of(8) {
            return; // 32-bit Arc layouts may misalign the payload; the
                    // loader correctly errors there (see store.rs tests)
        }
        let mut pos = 0;
        let view = BfuMatrix::decode_view(&arc, &mut pos).unwrap();
        assert_eq!(pos, total);
        assert!(view.is_view());
        assert!(view.payload_borrows(&arc));
        assert_eq!(view, m);
        // Probes agree between owned and viewed storage.
        let mut a = BitVec::zeros(70);
        let mut b = BitVec::zeros(70);
        for t in 0..70u64 {
            m.probe_all_into(&[pair(t)], 3, &mut a);
            view.probe_all_into(&[pair(t)], 3, &mut b);
            assert_eq!(a, b, "term {t}");
        }
    }

    #[test]
    fn view_decode_rejects_misaligned_offset() {
        // Encoding pads relative to the *current* buffer, so embedding at an
        // odd offset normally still aligns. Force misalignment by encoding
        // standalone (pad for origin 0) and then shifting the bytes by one.
        let m = BfuMatrix::new(256, 10);
        let mut standalone = Vec::new();
        m.encode_into(&mut standalone);
        let mut shifted = vec![0u8; 1];
        shifted.extend_from_slice(&standalone);
        let arc: Arc<[u8]> = shifted.into();
        if (arc.as_ptr() as usize).is_multiple_of(8) {
            let mut pos = 1;
            assert!(
                BfuMatrix::decode_view(&arc, &mut pos).is_err(),
                "misaligned payload must be an error, never UB"
            );
            // The copying path has no alignment requirement.
            assert!(BfuMatrix::decode_from(&mut &arc[1..]).is_ok());
        }
    }

    #[test]
    fn viewed_matrix_promotes_on_insert() {
        let mut m = BfuMatrix::new(512, 12);
        m.insert(3, pair(9), 2);
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let arc: Arc<[u8]> = buf.into();
        if !(arc.as_ptr() as usize).is_multiple_of(8) {
            return; // 32-bit Arc layouts may misalign the payload; the
                    // loader correctly errors there (see store.rs tests)
        }
        let mut pos = 0;
        let mut view = BfuMatrix::decode_view(&arc, &mut pos).unwrap();
        view.insert(5, pair(10), 2);
        assert!(!view.is_view(), "mutation must promote to owned");
        assert!(view.probe_bucket(3, &[pair(9)], 2));
        assert!(view.probe_bucket(5, &[pair(10)], 2));
    }
}
