//! Position-major BFU storage: the Count-Min-Sketch layout of a RAMBO table.
//!
//! A repetition holds `B` Bloom Filters for the Union that share one hash
//! family and one size `m` (required for fold-over and stacking). A query
//! term therefore probes the *same* bit position in every BFU — exactly a
//! Count-Min-Sketch row access. Storing the table as an `m × B` bit matrix
//! (row = filter position, column = BFU) turns the per-table probe from
//! `B·η` scattered bit reads into `η` contiguous `B`-bit row reads ANDed
//! together — the same word-parallel trick BIGSI/COBS use across documents,
//! applied across buckets. This is what makes RAMBO's `O(√K)` probe phase
//! beat COBS's `O(K)` row scan in practice and not just asymptotically.
//!
//! The layout also keeps the §5.3 operations cheap and exact:
//! * **fold-over** ORs the right half of every row onto the left half
//!   (columns `b` and `b + B/2` merge — Figure 3);
//! * **stacking** copies each node's rows into a column window of the global
//!   matrix (`global bucket = node·b + local`).

use crate::error::RamboError;
use bytes::{Buf, BufMut};
use rambo_bitvec::{BitVec, DecodeError};
use rambo_hash::HashPair;

const MAGIC: &[u8; 4] = b"RBFM";

/// An `m × B` bit matrix holding one repetition's BFUs column-wise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BfuMatrix {
    /// Filter length in bits (`m`) — the number of rows.
    m_bits: usize,
    /// Number of BFUs (`B`) — the number of columns.
    buckets: usize,
    /// Words per row (`⌈B/64⌉`).
    row_words: usize,
    /// Row-major bit storage, `m_bits · row_words` words.
    words: Vec<u64>,
}

impl BfuMatrix {
    pub(crate) fn new(m_bits: usize, buckets: usize) -> Self {
        assert!(m_bits > 0 && buckets > 0);
        let row_words = buckets.div_ceil(64);
        Self {
            m_bits,
            buckets,
            row_words,
            words: vec![0; m_bits * row_words],
        }
    }

    pub(crate) fn m_bits(&self) -> usize {
        self.m_bits
    }

    pub(crate) fn buckets(&self) -> usize {
        self.buckets
    }

    #[inline]
    fn row(&self, p: usize) -> &[u64] {
        &self.words[p * self.row_words..(p + 1) * self.row_words]
    }

    /// Set the `eta` filter bits of one term in one BFU (Algorithm 1's
    /// `Insert(x, RAMBO[φ_d(x), d])`).
    #[inline]
    pub(crate) fn insert(&mut self, bucket: usize, pair: HashPair, eta: u32) {
        debug_assert!(bucket < self.buckets);
        let m = self.m_bits as u64;
        for i in 0..eta {
            let p = pair.index(i, m) as usize;
            self.words[p * self.row_words + bucket / 64] |= 1u64 << (bucket % 64);
        }
    }

    /// Set one bucket's bit in every listed filter row. The batch engine
    /// stages rows pre-sorted so this walks the row-major storage
    /// monotonically — sequential cache lines instead of the term-order
    /// hopping of repeated [`BfuMatrix::insert`] calls.
    #[inline]
    pub(crate) fn set_rows(&mut self, bucket: usize, rows: &[usize]) {
        debug_assert!(bucket < self.buckets);
        let word = bucket / 64;
        let bit = 1u64 << (bucket % 64);
        for &p in rows {
            debug_assert!(p < self.m_bits);
            self.words[p * self.row_words + word] |= bit;
        }
    }

    /// Which BFUs contain *all* the given terms: AND of the probed rows,
    /// written into `mask` (a `B`-bit vector). This is the whole per-table
    /// probe phase of Algorithm 2 — `η·|pairs|` sequential row reads.
    pub(crate) fn probe_all_into(&self, pairs: &[HashPair], eta: u32, mask: &mut BitVec) {
        debug_assert_eq!(mask.len(), self.buckets);
        // set_all keeps the tail bits beyond B zeroed (BitVec invariant), and
        // AND can only clear bits, so the mask stays well-formed throughout.
        mask.set_all();
        let m = self.m_bits as u64;
        for pair in pairs {
            for i in 0..eta {
                let p = pair.index(i, m) as usize;
                mask.and_words(self.row(p));
            }
        }
    }

    /// Does one BFU contain all the terms? Used by RAMBO+ for memoized
    /// candidate-bucket probes.
    #[inline]
    pub(crate) fn probe_bucket(&self, bucket: usize, pairs: &[HashPair], eta: u32) -> bool {
        debug_assert!(bucket < self.buckets);
        let m = self.m_bits as u64;
        let (word, bit) = (bucket / 64, bucket % 64);
        pairs.iter().all(|pair| {
            (0..eta).all(|i| {
                let p = pair.index(i, m) as usize;
                (self.words[p * self.row_words + word] >> bit) & 1 == 1
            })
        })
    }

    /// Extract one BFU's bits as a standalone filter image (column slice).
    /// O(m) — used for stats, tests and cross-checks, not on query paths.
    pub(crate) fn column(&self, bucket: usize) -> BitVec {
        assert!(bucket < self.buckets);
        let (word, bit) = (bucket / 64, bucket % 64);
        BitVec::from_ones(
            self.m_bits,
            (0..self.m_bits).filter(|p| (self.words[p * self.row_words + word] >> bit) & 1 == 1),
        )
    }

    /// Set-bit count of every column in one matrix pass (for fill/FPR
    /// statistics without `B` strided column scans).
    pub(crate) fn column_ones(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.buckets];
        for p in 0..self.m_bits {
            for (w, &word) in self.row(p).iter().enumerate() {
                let mut rest = word;
                while rest != 0 {
                    let bit = rest.trailing_zeros() as usize;
                    counts[w * 64 + bit] += 1;
                    rest &= rest - 1;
                }
            }
        }
        counts
    }

    /// Fraction of set bits in one BFU column.
    #[allow(dead_code)] // diagnostic helper; exercised by tests
    pub(crate) fn column_fill(&self, bucket: usize) -> f64 {
        let (word, bit) = (bucket / 64, bucket % 64);
        let ones = (0..self.m_bits)
            .filter(|p| (self.words[p * self.row_words + word] >> bit) & 1 == 1)
            .count();
        ones as f64 / self.m_bits as f64
    }

    /// Fold-over (§5.3): merge column `b + B/2` into column `b` for every
    /// row; the matrix narrows to `B/2` columns.
    ///
    /// # Errors
    /// [`RamboError::FoldUnavailable`] when `B` is odd or below 4.
    pub(crate) fn fold_once(&mut self) -> Result<(), RamboError> {
        if !self.buckets.is_multiple_of(2) {
            return Err(RamboError::FoldUnavailable(format!(
                "bucket count {} is odd",
                self.buckets
            )));
        }
        if self.buckets < 4 {
            return Err(RamboError::FoldUnavailable(format!(
                "folding below 2 buckets (current {}) would collapse the partition",
                self.buckets
            )));
        }
        let half = self.buckets / 2;
        let new_row_words = half.div_ceil(64);
        let mut new_words = vec![0u64; self.m_bits * new_row_words];
        for p in 0..self.m_bits {
            let row = self.row(p);
            let dst = &mut new_words[p * new_row_words..(p + 1) * new_row_words];
            // Low half: bits [0, half).
            for (w, d) in dst.iter_mut().enumerate() {
                *d = row[w];
            }
            mask_tail(dst, half);
            // High half: bits [half, 2·half) shifted down by `half`.
            let shift = half % 64;
            let word_off = half / 64;
            for w in 0..new_row_words {
                let lo = row[word_off + w] >> shift;
                let hi = if shift == 0 {
                    0
                } else {
                    row.get(word_off + w + 1).map_or(0, |x| x << (64 - shift))
                };
                dst[w] |= lo | hi;
            }
            mask_tail(dst, half);
        }
        self.buckets = half;
        self.row_words = new_row_words;
        self.words = new_words;
        Ok(())
    }

    /// Stacking (§5.3, Figure 3): copy `src`'s columns into this matrix at
    /// column offset `dst_offset` (OR-ing; the window is expected empty).
    ///
    /// # Panics
    /// Panics on row-count mismatch or column overflow.
    pub(crate) fn copy_columns_from(&mut self, src: &Self, dst_offset: usize) {
        assert_eq!(self.m_bits, src.m_bits, "row counts must match");
        assert!(dst_offset + src.buckets <= self.buckets, "column overflow");
        let shift = dst_offset % 64;
        let word_off = dst_offset / 64;
        for p in 0..self.m_bits {
            let src_row = &src.words[p * src.row_words..(p + 1) * src.row_words];
            let dst_row = &mut self.words[p * self.row_words..(p + 1) * self.row_words];
            for (w, &sw) in src_row.iter().enumerate() {
                if sw == 0 {
                    continue;
                }
                dst_row[word_off + w] |= sw << shift;
                if shift != 0 && word_off + w + 1 < dst_row.len() {
                    dst_row[word_off + w + 1] |= sw >> (64 - shift);
                }
            }
            // Clear any bits that spilled past the window (src tail bits are
            // zero by construction, so nothing to clean in practice).
        }
    }

    /// Total set bits (diagnostics).
    #[allow(dead_code)] // diagnostic helper; exercised by tests
    pub(crate) fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Heap bytes of the matrix payload.
    pub(crate) fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Append the binary encoding.
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_slice(MAGIC);
        out.put_u64_le(self.m_bits as u64);
        out.put_u64_le(self.buckets as u64);
        for &w in &self.words {
            out.put_u64_le(w);
        }
    }

    /// Decode, advancing the buffer.
    pub(crate) fn decode_from(buf: &mut &[u8]) -> Result<Self, RamboError> {
        if buf.remaining() < 20 {
            return Err(DecodeError::new("bfu matrix header truncated").into());
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::new("bad bfu matrix magic").into());
        }
        let m_bits = usize::try_from(buf.get_u64_le())
            .map_err(|_| DecodeError::new("matrix rows exceed address space"))?;
        let buckets = usize::try_from(buf.get_u64_le())
            .map_err(|_| DecodeError::new("matrix columns exceed address space"))?;
        if m_bits == 0 || buckets == 0 {
            return Err(DecodeError::new("matrix with zero dimension").into());
        }
        let row_words = buckets.div_ceil(64);
        let n_words = m_bits
            .checked_mul(row_words)
            .ok_or_else(|| DecodeError::new("matrix size overflow"))?;
        let payload_len = n_words
            .checked_mul(8)
            .ok_or_else(|| DecodeError::new("matrix size overflow"))?;
        if buf.remaining() < payload_len {
            return Err(DecodeError::new("bfu matrix payload truncated").into());
        }
        // Bulk chunked decode of the word payload (one pass, no per-element
        // cursor bookkeeping).
        let mut words = Vec::with_capacity(n_words);
        words.extend(
            buf[..payload_len]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8"))),
        );
        buf.advance(payload_len);
        // Validate row tails: bits beyond `buckets` must be clear.
        let tail = buckets % 64;
        if tail != 0 {
            let mask = !((1u64 << tail) - 1);
            for p in 0..m_bits {
                if words[p * row_words + row_words - 1] & mask != 0 {
                    return Err(DecodeError::new("matrix row tail bits set").into());
                }
            }
        }
        Ok(Self {
            m_bits,
            buckets,
            row_words,
            words,
        })
    }
}

/// Zero bits at positions `>= len` in the final word of a row.
fn mask_tail(row: &mut [u64], len: usize) {
    let tail = len % 64;
    if tail != 0 {
        if let Some(last) = row.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(t: u64) -> HashPair {
        HashPair::of_u64(t, 99)
    }

    #[test]
    fn insert_probe_roundtrip() {
        let mut m = BfuMatrix::new(1 << 10, 70); // >64 columns: two words/row
        m.insert(3, pair(1), 2);
        m.insert(68, pair(2), 2);
        assert!(m.probe_bucket(3, &[pair(1)], 2));
        assert!(m.probe_bucket(68, &[pair(2)], 2));
        assert!(!m.probe_bucket(3, &[pair(2)], 2));
        assert!(!m.probe_bucket(0, &[pair(1)], 2));
    }

    #[test]
    fn probe_all_matches_per_bucket_probes() {
        let mut m = BfuMatrix::new(1 << 12, 130);
        for b in 0..130usize {
            for t in 0..(b as u64 % 7) {
                m.insert(b, pair(t), 3);
            }
        }
        let mut mask = BitVec::zeros(130);
        for t in 0..7u64 {
            m.probe_all_into(&[pair(t)], 3, &mut mask);
            for b in 0..130usize {
                assert_eq!(
                    mask.get(b),
                    m.probe_bucket(b, &[pair(t)], 3),
                    "term {t} bucket {b}"
                );
            }
        }
    }

    #[test]
    fn multi_term_probe_is_conjunctive() {
        let mut m = BfuMatrix::new(1 << 12, 16);
        m.insert(5, pair(10), 2);
        m.insert(5, pair(11), 2);
        m.insert(9, pair(10), 2);
        let mut mask = BitVec::zeros(16);
        m.probe_all_into(&[pair(10), pair(11)], 2, &mut mask);
        assert!(mask.get(5));
        assert!(!mask.get(9) || m.probe_bucket(9, &[pair(11)], 2));
    }

    #[test]
    fn column_extraction_matches_inserts() {
        let mut m = BfuMatrix::new(4096, 10);
        m.insert(7, pair(42), 4);
        let col = m.column(7);
        let expected: Vec<usize> = (0..4).map(|i| pair(42).index(i, 4096) as usize).collect();
        for p in expected {
            assert!(col.get(p));
        }
        assert!(m.column(6).none());
        assert!(m.column_fill(7) > 0.0);
        assert_eq!(m.column_fill(6), 0.0);
    }

    #[test]
    fn fold_merges_column_pairs() {
        for b in [8usize, 70, 128, 130] {
            let mut m = BfuMatrix::new(2048, b);
            // Distinct term per bucket.
            for col in 0..b {
                m.insert(col, pair(col as u64), 2);
            }
            let before: Vec<BitVec> = (0..b).map(|c| m.column(c)).collect();
            m.fold_once().unwrap();
            assert_eq!(m.buckets(), b / 2);
            for c in 0..b / 2 {
                let mut expect = before[c].clone();
                expect.or_assign(&before[c + b / 2]);
                assert_eq!(m.column(c), expect, "B={b} col {c}");
            }
        }
    }

    #[test]
    fn fold_guards() {
        let mut odd = BfuMatrix::new(64, 7);
        assert!(odd.fold_once().is_err());
        let mut tiny = BfuMatrix::new(64, 2);
        assert!(tiny.fold_once().is_err());
    }

    #[test]
    fn stacking_copies_column_windows() {
        // Three shards of 5 columns each → 15-column global, offsets 0/5/10
        // (exercises non-word-aligned shifts).
        let mut global = BfuMatrix::new(1024, 15);
        let mut shards = Vec::new();
        for node in 0..3u64 {
            let mut s = BfuMatrix::new(1024, 5);
            for col in 0..5usize {
                s.insert(col, pair(node * 100 + col as u64), 3);
            }
            shards.push(s);
        }
        for (node, s) in shards.iter().enumerate() {
            global.copy_columns_from(s, node * 5);
        }
        for (node, s) in shards.iter().enumerate() {
            for col in 0..5usize {
                assert_eq!(
                    global.column(node * 5 + col),
                    s.column(col),
                    "node {node} col {col}"
                );
            }
        }
    }

    #[test]
    fn stacking_across_word_boundaries() {
        let mut global = BfuMatrix::new(512, 200);
        let mut src = BfuMatrix::new(512, 90);
        for col in (0..90).step_by(7) {
            src.insert(col, pair(col as u64), 2);
        }
        global.copy_columns_from(&src, 60); // offset 60, spans words 0..3
        for col in 0..90 {
            assert_eq!(global.column(60 + col), src.column(col), "col {col}");
        }
        assert_eq!(global.count_ones(), src.count_ones());
    }

    #[test]
    fn serialization_roundtrip() {
        let mut m = BfuMatrix::new(2048, 77);
        for t in 0..50u64 {
            m.insert((t % 77) as usize, pair(t), 3);
        }
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let mut slice = buf.as_slice();
        let back = BfuMatrix::decode_from(&mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(m, back);
    }

    #[test]
    fn serialization_rejects_corruption() {
        let m = BfuMatrix::new(64, 10);
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(BfuMatrix::decode_from(&mut bad.as_slice()).is_err());
        assert!(BfuMatrix::decode_from(&mut &buf[..10]).is_err());
        // Dirty tail bits.
        let mut dirty = buf.clone();
        let last = dirty.len() - 1;
        dirty[last] |= 0x80; // bit 63 of a 10-column row
        assert!(BfuMatrix::decode_from(&mut dirty.as_slice()).is_err());
    }
}
