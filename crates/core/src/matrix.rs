//! Position-major BFU storage: the Count-Min-Sketch layout of a RAMBO table.
//!
//! A repetition holds `B` Bloom Filters for the Union that share one hash
//! family and one size `m` (required for fold-over and stacking). A query
//! term therefore probes the *same* bit position in every BFU — exactly a
//! Count-Min-Sketch row access. Storing the table as an `m × B` bit matrix
//! (row = filter position, column = BFU) turns the per-table probe from
//! `B·η` scattered bit reads into `η` contiguous `B`-bit row reads ANDed
//! together — the same word-parallel trick BIGSI/COBS use across documents,
//! applied across buckets. This is what makes RAMBO's `O(√K)` probe phase
//! beat COBS's `O(K)` row scan in practice and not just asymptotically.
//!
//! The probe itself runs through the fused kernels of
//! [`rambo_bitvec::kernel`]: up to four probed rows are ANDed into the
//! bucket mask per pass (duplicate query terms deduplicated first), and the
//! table is abandoned the moment the running mask goes all-zero. The kernels
//! are runtime-dispatched ([`rambo_bitvec::kernel::Backend`]): the probe,
//! the repetition-intersection walk and the bit-sliced column fills all pick
//! up the AVX2 variants on hosts that support them, with no change here. The word
//! payload lives in a [`WordStore`] — owned, or a zero-copy view into a
//! serialized index buffer (see [`crate::Rambo::open_view`]); mutating a
//! viewed matrix promotes it to owned storage first.
//!
//! The layout also keeps the §5.3 operations cheap and exact:
//! * **fold-over** ORs the right half of every row onto the left half
//!   (columns `b` and `b + B/2` merge — Figure 3);
//! * **stacking** copies each node's rows into a column window of the global
//!   matrix (`global bucket = node·b + local`).

use crate::error::RamboError;
use bytes::{Buf, BufMut};
use rambo_bitvec::{
    kernel, skip_word_padding, write_word_padding, BitVec, DecodeError, WordStore, WordView,
};
use rambo_hash::HashPair;
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"RBFM";
/// Bytes before the alignment padding: magic, rows, columns, pad length.
const HEADER_BYTES: usize = 4 + 8 + 8 + 1;

/// An `m × B` bit matrix holding one repetition's BFUs column-wise.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct BfuMatrix {
    /// Filter length in bits (`m`) — the number of rows.
    m_bits: usize,
    /// Number of BFUs (`B`) — the number of columns.
    buckets: usize,
    /// Words per row (`⌈B/64⌉`).
    row_words: usize,
    /// Row-major bit storage, `m_bits · row_words` words — owned, or a
    /// zero-copy view into a serialized index buffer.
    words: WordStore,
}

/// Parsed fixed-size matrix header (shared by the copying and zero-copy
/// decode paths). The cursor is left at the first payload word.
struct MatrixHeader {
    m_bits: usize,
    buckets: usize,
    row_words: usize,
    n_words: usize,
    payload_len: usize,
}

impl BfuMatrix {
    pub(crate) fn new(m_bits: usize, buckets: usize) -> Self {
        assert!(m_bits > 0 && buckets > 0);
        let row_words = buckets.div_ceil(64);
        Self {
            m_bits,
            buckets,
            row_words,
            words: vec![0; m_bits * row_words].into(),
        }
    }

    pub(crate) fn m_bits(&self) -> usize {
        self.m_bits
    }

    pub(crate) fn buckets(&self) -> usize {
        self.buckets
    }

    /// True when the word payload is a zero-copy view into a shared buffer.
    pub(crate) fn is_view(&self) -> bool {
        self.words.is_view()
    }

    /// Does the word payload live inside `buf`? (Diagnostic for the
    /// zero-copy load path; owned matrices always answer `false`.)
    pub(crate) fn payload_borrows(&self, buf: &[u8]) -> bool {
        if !self.words.is_view() {
            return false;
        }
        let range = buf.as_ptr_range();
        let words = self.words.as_words();
        let start = words.as_ptr().cast::<u8>();
        // `range.end` is one-past-the-end, so a payload ending exactly at
        // the buffer end is still inside.
        range.contains(&start) && words.as_ptr_range().end.cast::<u8>() <= range.end
    }

    #[inline]
    fn row(&self, p: usize) -> &[u64] {
        &self.words.as_words()[p * self.row_words..(p + 1) * self.row_words]
    }

    /// Set the `eta` filter bits of one term in one BFU (Algorithm 1's
    /// `Insert(x, RAMBO[φ_d(x), d])`).
    #[inline]
    pub(crate) fn insert(&mut self, bucket: usize, pair: HashPair, eta: u32) {
        debug_assert!(bucket < self.buckets);
        let m = self.m_bits as u64;
        let row_words = self.row_words;
        let words = self.words.to_mut();
        for i in 0..eta {
            let p = pair.index(i, m) as usize;
            words[p * row_words + bucket / 64] |= 1u64 << (bucket % 64);
        }
    }

    /// Set one bucket's bit in every listed filter row. The batch engine
    /// stages rows pre-sorted so this walks the row-major storage
    /// monotonically — sequential cache lines instead of the term-order
    /// hopping of repeated [`BfuMatrix::insert`] calls.
    #[inline]
    pub(crate) fn set_rows(&mut self, bucket: usize, rows: &[usize]) {
        debug_assert!(bucket < self.buckets);
        let word = bucket / 64;
        let bit = 1u64 << (bucket % 64);
        let row_words = self.row_words;
        let m_bits = self.m_bits;
        let words = self.words.to_mut();
        for &p in rows {
            debug_assert!(p < m_bits);
            words[p * row_words + word] |= bit;
        }
    }

    /// Which BFUs contain *all* the given terms: AND of the probed rows,
    /// written into `mask` (a `B`-bit vector). This is the whole per-table
    /// probe phase of Algorithm 2.
    ///
    /// Three optimizations over the row-at-a-time loop:
    /// * duplicate [`HashPair`]s (a term repeated across the query) are
    ///   probed once;
    /// * up to four rows are fused into each pass over the mask
    ///   ([`BitVec::and_rows_any`]), keeping the running mask in registers;
    /// * the table is abandoned the moment the mask goes all-zero — AND can
    ///   only clear bits, so the remaining rows cannot change the answer.
    pub(crate) fn probe_all_into(&self, pairs: &[HashPair], eta: u32, mask: &mut BitVec) {
        debug_assert_eq!(mask.len(), self.buckets);
        // set_all keeps the tail bits beyond B zeroed (BitVec invariant), and
        // AND can only clear bits, so the mask stays well-formed throughout.
        mask.set_all();
        let m = self.m_bits as u64;
        let rw = self.row_words;
        let words = self.words.as_words();
        let mut staged = [0usize; 4];
        let mut n = 0;
        for (i, pair) in pairs.iter().enumerate() {
            if pairs[..i].contains(pair) {
                continue; // duplicate term: same rows, AND is idempotent
            }
            for j in 0..eta {
                staged[n] = pair.index(j, m) as usize * rw;
                n += 1;
                if n == 4 {
                    n = 0;
                    if !mask.and_rows_any([
                        &words[staged[0]..staged[0] + rw],
                        &words[staged[1]..staged[1] + rw],
                        &words[staged[2]..staged[2] + rw],
                        &words[staged[3]..staged[3] + rw],
                    ]) {
                        return; // mask is dead; nothing can revive it
                    }
                }
            }
        }
        match n {
            1 => {
                mask.and_rows_any([&words[staged[0]..staged[0] + rw]]);
            }
            2 => {
                mask.and_rows_any([
                    &words[staged[0]..staged[0] + rw],
                    &words[staged[1]..staged[1] + rw],
                ]);
            }
            3 => {
                mask.and_rows_any([
                    &words[staged[0]..staged[0] + rw],
                    &words[staged[1]..staged[1] + rw],
                    &words[staged[2]..staged[2] + rw],
                ]);
            }
            _ => {}
        }
    }

    /// Materialize each pair's *own* bucket mask:
    /// `out[i * row_words..][..row_words]` becomes the AND of pair `i`'s
    /// `eta` rows — which BFUs contain that term. Unlike
    /// [`BfuMatrix::probe_all_into`] the masks stay separate (the shape the
    /// batch evaluator's per-term memo stores), and the row loads of up to
    /// four pairs are interleaved so their random-access cache misses
    /// overlap instead of serializing: a cold memo fill is latency-bound,
    /// and term-at-a-time probing leaves the memory pipeline idle.
    pub(crate) fn probe_pairs_into(&self, pairs: &[HashPair], eta: u32, out: &mut [u64]) {
        let rw = self.row_words;
        debug_assert_eq!(out.len(), pairs.len() * rw);
        let words = self.words.as_words();
        if eta == 0 {
            // Zero filter bits per term: every bucket matches (the same
            // all-ones-with-zero-tail mask `probe_all_into` starts from).
            let tail = self.buckets % 64;
            for mask in out.chunks_exact_mut(rw) {
                mask.fill(!0u64);
                if tail != 0 {
                    mask[rw - 1] = (1u64 << tail) - 1;
                }
            }
            return;
        }
        let m = self.m_bits as u64;
        const LANES: usize = 4;
        let mut offs = [0usize; LANES];
        for (chunk_i, chunk) in pairs.chunks(LANES).enumerate() {
            let base = chunk_i * LANES * rw;
            // First row of every lane, offsets computed before any load so
            // the loads issue back to back with no dependencies between
            // them; then each later row is ANDed in, again lane-interleaved.
            for (g, pair) in chunk.iter().enumerate() {
                offs[g] = pair.index(0, m) as usize * rw;
            }
            for g in 0..chunk.len() {
                out[base + g * rw..base + (g + 1) * rw]
                    .copy_from_slice(&words[offs[g]..offs[g] + rw]);
            }
            for j in 1..eta {
                for (g, pair) in chunk.iter().enumerate() {
                    offs[g] = pair.index(j, m) as usize * rw;
                }
                for g in 0..chunk.len() {
                    let row = &words[offs[g]..offs[g] + rw];
                    for (dst, r) in out[base + g * rw..base + (g + 1) * rw].iter_mut().zip(row) {
                        *dst &= r;
                    }
                }
            }
        }
    }

    /// Does one BFU contain all the terms? Used by RAMBO+ for memoized
    /// candidate-bucket probes.
    #[inline]
    pub(crate) fn probe_bucket(&self, bucket: usize, pairs: &[HashPair], eta: u32) -> bool {
        debug_assert!(bucket < self.buckets);
        let m = self.m_bits as u64;
        let (word, bit) = (bucket / 64, bucket % 64);
        let words = self.words.as_words();
        pairs.iter().all(|pair| {
            (0..eta).all(|i| {
                let p = pair.index(i, m) as usize;
                (words[p * self.row_words + word] >> bit) & 1 == 1
            })
        })
    }

    /// Extract one BFU's bits as a standalone filter image (column slice).
    /// O(m) — used for stats, tests and cross-checks, not on query paths.
    pub(crate) fn column(&self, bucket: usize) -> BitVec {
        assert!(bucket < self.buckets);
        let (word, bit) = (bucket / 64, bucket % 64);
        let words = self.words.as_words();
        BitVec::from_ones(
            self.m_bits,
            (0..self.m_bits).filter(|p| (words[p * self.row_words + word] >> bit) & 1 == 1),
        )
    }

    /// Set-bit count of every column in one sequential matrix pass, via the
    /// bit-sliced vertical counters of [`kernel::ColumnCounter`] — 64
    /// columns advance per word operation, with no per-set-bit extraction.
    pub(crate) fn column_ones(&self) -> Vec<usize> {
        let mut cc = kernel::ColumnCounter::new(self.row_words);
        for p in 0..self.m_bits {
            cc.add_row(self.row(p));
        }
        let mut counts = cc.counts();
        counts.truncate(self.buckets);
        counts
    }

    /// Fraction of set bits in one BFU column.
    #[allow(dead_code)] // diagnostic helper; exercised by tests
    pub(crate) fn column_fill(&self, bucket: usize) -> f64 {
        let (word, bit) = (bucket / 64, bucket % 64);
        let words = self.words.as_words();
        let ones = (0..self.m_bits)
            .filter(|p| (words[p * self.row_words + word] >> bit) & 1 == 1)
            .count();
        ones as f64 / self.m_bits as f64
    }

    /// Fold-over (§5.3): merge column `b + B/2` into column `b` for every
    /// row; the matrix narrows to `B/2` columns. Always produces owned
    /// storage (the fold rebuilds the payload anyway, so folding a viewed
    /// matrix costs no extra copy).
    ///
    /// # Errors
    /// [`RamboError::FoldUnavailable`] when `B` is odd or below 4.
    pub(crate) fn fold_once(&mut self) -> Result<(), RamboError> {
        if !self.buckets.is_multiple_of(2) {
            return Err(RamboError::FoldUnavailable(format!(
                "bucket count {} is odd",
                self.buckets
            )));
        }
        if self.buckets < 4 {
            return Err(RamboError::FoldUnavailable(format!(
                "folding below 2 buckets (current {}) would collapse the partition",
                self.buckets
            )));
        }
        let half = self.buckets / 2;
        let new_row_words = half.div_ceil(64);
        let mut new_words = vec![0u64; self.m_bits * new_row_words];
        for p in 0..self.m_bits {
            let row = self.row(p);
            let dst = &mut new_words[p * new_row_words..(p + 1) * new_row_words];
            // Low half: bits [0, half).
            for (w, d) in dst.iter_mut().enumerate() {
                *d = row[w];
            }
            mask_tail(dst, half);
            // High half: bits [half, 2·half) shifted down by `half`.
            let shift = half % 64;
            let word_off = half / 64;
            for w in 0..new_row_words {
                let lo = row[word_off + w] >> shift;
                let hi = if shift == 0 {
                    0
                } else {
                    row.get(word_off + w + 1).map_or(0, |x| x << (64 - shift))
                };
                dst[w] |= lo | hi;
            }
            mask_tail(dst, half);
        }
        self.buckets = half;
        self.row_words = new_row_words;
        self.words = new_words.into();
        Ok(())
    }

    /// Stacking (§5.3, Figure 3): copy `src`'s columns into this matrix at
    /// column offset `dst_offset` (OR-ing; the window is expected empty).
    ///
    /// # Panics
    /// Panics on row-count mismatch or column overflow.
    pub(crate) fn copy_columns_from(&mut self, src: &Self, dst_offset: usize) {
        assert_eq!(self.m_bits, src.m_bits, "row counts must match");
        assert!(dst_offset + src.buckets <= self.buckets, "column overflow");
        let shift = dst_offset % 64;
        let word_off = dst_offset / 64;
        let (dst_rw, src_rw) = (self.row_words, src.row_words);
        let m_bits = self.m_bits;
        let src_words = src.words.as_words();
        let dst_words = self.words.to_mut();
        for p in 0..m_bits {
            let src_row = &src_words[p * src_rw..(p + 1) * src_rw];
            let dst_row = &mut dst_words[p * dst_rw..(p + 1) * dst_rw];
            for (w, &sw) in src_row.iter().enumerate() {
                if sw == 0 {
                    continue;
                }
                dst_row[word_off + w] |= sw << shift;
                if shift != 0 && word_off + w + 1 < dst_row.len() {
                    dst_row[word_off + w + 1] |= sw >> (64 - shift);
                }
            }
            // Clear any bits that spilled past the window (src tail bits are
            // zero by construction, so nothing to clean in practice).
        }
    }

    /// OR another same-geometry matrix into this one — the merge step of a
    /// document-sharded build ([`crate::pipeline`]): partial indexes built
    /// with the same seed set disjoint documents' bits into the same
    /// `m × B` grid, so their union is exactly the monolithic matrix.
    ///
    /// # Panics
    /// Panics on geometry mismatch.
    pub(crate) fn merge_or(&mut self, src: &Self) {
        assert_eq!(self.m_bits, src.m_bits, "row counts must match");
        assert_eq!(self.buckets, src.buckets, "column counts must match");
        let src_words = src.words.as_words();
        for (d, &s) in self.words.to_mut().iter_mut().zip(src_words) {
            *d |= s;
        }
    }

    /// Total set bits (diagnostics).
    #[allow(dead_code)] // diagnostic helper; exercised by tests
    pub(crate) fn count_ones(&self) -> usize {
        kernel::popcount(self.words.as_words())
    }

    /// Heap bytes of the matrix payload (a view's borrowed payload counts
    /// toward its backing buffer).
    pub(crate) fn size_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// Append the binary encoding. The word payload is preceded by a pad
    /// byte plus up to 7 zero bytes so it lands 8-byte-aligned *relative to
    /// the start of `out`* — containers that keep that origin (index files)
    /// can be re-opened zero-copy via [`BfuMatrix::decode_view`].
    pub(crate) fn encode_into(&self, out: &mut Vec<u8>) {
        out.put_slice(MAGIC);
        out.put_u64_le(self.m_bits as u64);
        out.put_u64_le(self.buckets as u64);
        write_word_padding(out);
        for &w in self.words.as_words() {
            out.put_u64_le(w);
        }
    }

    /// Parse the fixed header and padding, advancing `buf` to the payload.
    fn decode_header(buf: &mut &[u8]) -> Result<MatrixHeader, RamboError> {
        if buf.remaining() < HEADER_BYTES {
            return Err(DecodeError::new("bfu matrix header truncated").into());
        }
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::new("bad bfu matrix magic").into());
        }
        let m_bits = usize::try_from(buf.get_u64_le())
            .map_err(|_| DecodeError::new("matrix rows exceed address space"))?;
        let buckets = usize::try_from(buf.get_u64_le())
            .map_err(|_| DecodeError::new("matrix columns exceed address space"))?;
        if m_bits == 0 || buckets == 0 {
            return Err(DecodeError::new("matrix with zero dimension").into());
        }
        skip_word_padding(buf)?;
        let row_words = buckets.div_ceil(64);
        let n_words = m_bits
            .checked_mul(row_words)
            .ok_or_else(|| DecodeError::new("matrix size overflow"))?;
        let payload_len = n_words
            .checked_mul(8)
            .ok_or_else(|| DecodeError::new("matrix size overflow"))?;
        if buf.remaining() < payload_len {
            return Err(DecodeError::new("bfu matrix payload truncated").into());
        }
        Ok(MatrixHeader {
            m_bits,
            buckets,
            row_words,
            n_words,
            payload_len,
        })
    }

    /// Reject payloads whose rows set bits beyond `buckets`.
    fn check_row_tails(
        words: &[u64],
        m_bits: usize,
        row_words: usize,
        buckets: usize,
    ) -> Result<(), RamboError> {
        let tail = buckets % 64;
        if tail != 0 {
            let mask = !((1u64 << tail) - 1);
            for p in 0..m_bits {
                if words[p * row_words + row_words - 1] & mask != 0 {
                    return Err(DecodeError::new("matrix row tail bits set").into());
                }
            }
        }
        Ok(())
    }

    /// Decode, advancing the buffer. Copies the payload into owned storage.
    pub(crate) fn decode_from(buf: &mut &[u8]) -> Result<Self, RamboError> {
        let h = Self::decode_header(buf)?;
        // Bulk chunked decode of the word payload (one pass, no per-element
        // cursor bookkeeping).
        let mut words = Vec::with_capacity(h.n_words);
        words.extend(
            buf[..h.payload_len]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes(c.try_into().expect("chunk of 8"))),
        );
        buf.advance(h.payload_len);
        Self::check_row_tails(&words, h.m_bits, h.row_words, h.buckets)?;
        Ok(Self {
            m_bits: h.m_bits,
            buckets: h.buckets,
            row_words: h.row_words,
            words: words.into(),
        })
    }

    /// Zero-copy decode: parse the header at byte `*pos` of `buf` and
    /// borrow the word payload in place (no word copies; validation reads
    /// one word per row for the tail check). Advances `*pos` past the
    /// consumed bytes.
    ///
    /// # Errors
    /// [`RamboError::Decode`] on any format violation, or when the payload
    /// is not 8-byte-aligned in memory (e.g. the index was embedded at an
    /// unaligned offset — fall back to [`BfuMatrix::decode_from`]).
    pub(crate) fn decode_view(buf: &Arc<[u8]>, pos: &mut usize) -> Result<Self, RamboError> {
        let mut slice: &[u8] = buf
            .get(*pos..)
            .ok_or_else(|| DecodeError::new("matrix offset out of range"))?;
        let before = slice.len();
        let h = Self::decode_header(&mut slice)?;
        let word_start = *pos + (before - slice.len());
        let view = WordView::new(buf.clone(), word_start, h.n_words)?;
        Self::check_row_tails(view.as_words(), h.m_bits, h.row_words, h.buckets)?;
        *pos = word_start + h.payload_len;
        Ok(Self {
            m_bits: h.m_bits,
            buckets: h.buckets,
            row_words: h.row_words,
            words: WordStore::View(view),
        })
    }
}

/// Zero bits at positions `>= len` in the final word of a row.
fn mask_tail(row: &mut [u64], len: usize) {
    let tail = len % 64;
    if tail != 0 {
        if let Some(last) = row.last_mut() {
            *last &= (1u64 << tail) - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(t: u64) -> HashPair {
        HashPair::of_u64(t, 99)
    }

    #[test]
    fn insert_probe_roundtrip() {
        let mut m = BfuMatrix::new(1 << 10, 70); // >64 columns: two words/row
        m.insert(3, pair(1), 2);
        m.insert(68, pair(2), 2);
        assert!(m.probe_bucket(3, &[pair(1)], 2));
        assert!(m.probe_bucket(68, &[pair(2)], 2));
        assert!(!m.probe_bucket(3, &[pair(2)], 2));
        assert!(!m.probe_bucket(0, &[pair(1)], 2));
    }

    #[test]
    fn probe_all_matches_per_bucket_probes() {
        let mut m = BfuMatrix::new(1 << 12, 130);
        for b in 0..130usize {
            for t in 0..(b as u64 % 7) {
                m.insert(b, pair(t), 3);
            }
        }
        let mut mask = BitVec::zeros(130);
        for t in 0..7u64 {
            m.probe_all_into(&[pair(t)], 3, &mut mask);
            for b in 0..130usize {
                assert_eq!(
                    mask.get(b),
                    m.probe_bucket(b, &[pair(t)], 3),
                    "term {t} bucket {b}"
                );
            }
        }
    }

    /// The fused/staged kernel path must agree with per-bucket probes for
    /// every pair-count arity (1..=5 pairs × η rows exercises every
    /// remainder branch of the 4-row staging loop).
    #[test]
    fn probe_all_arity_sweep() {
        let mut m = BfuMatrix::new(1 << 12, 70);
        for b in 0..70usize {
            for t in 0..10u64 {
                if !(b as u64 + t).is_multiple_of(3) {
                    m.insert(b, pair(t), 3);
                }
            }
        }
        let mut mask = BitVec::zeros(70);
        for n_pairs in 1..=5usize {
            for eta in 1..=5u32 {
                let pairs: Vec<HashPair> = (0..n_pairs as u64).map(pair).collect();
                m.probe_all_into(&pairs, eta, &mut mask);
                for b in 0..70usize {
                    assert_eq!(
                        mask.get(b),
                        m.probe_bucket(b, &pairs, eta),
                        "pairs {n_pairs} eta {eta} bucket {b}"
                    );
                }
            }
        }
    }

    /// Duplicate pairs (a term repeated across the query) must not change
    /// the result — they are deduplicated before the kernel loop.
    #[test]
    fn probe_all_dedupes_repeated_pairs() {
        let mut m = BfuMatrix::new(1 << 12, 66);
        for b in 0..66usize {
            m.insert(b, pair(b as u64 % 5), 3);
        }
        let mut plain = BitVec::zeros(66);
        let mut duped = BitVec::zeros(66);
        m.probe_all_into(&[pair(1), pair(2)], 3, &mut plain);
        m.probe_all_into(
            &[pair(1), pair(2), pair(1), pair(1), pair(2)],
            3,
            &mut duped,
        );
        assert_eq!(plain, duped);
    }

    #[test]
    fn multi_term_probe_is_conjunctive() {
        let mut m = BfuMatrix::new(1 << 12, 16);
        m.insert(5, pair(10), 2);
        m.insert(5, pair(11), 2);
        m.insert(9, pair(10), 2);
        let mut mask = BitVec::zeros(16);
        m.probe_all_into(&[pair(10), pair(11)], 2, &mut mask);
        assert!(mask.get(5));
        assert!(!mask.get(9) || m.probe_bucket(9, &[pair(11)], 2));
    }

    #[test]
    fn probe_all_on_empty_matrix_dies_early() {
        let m = BfuMatrix::new(1 << 10, 40);
        let mut mask = BitVec::zeros(40);
        m.probe_all_into(&[pair(1), pair(2), pair(3)], 4, &mut mask);
        assert!(mask.none());
    }

    #[test]
    fn column_extraction_matches_inserts() {
        let mut m = BfuMatrix::new(4096, 10);
        m.insert(7, pair(42), 4);
        let col = m.column(7);
        let expected: Vec<usize> = (0..4).map(|i| pair(42).index(i, 4096) as usize).collect();
        for p in expected {
            assert!(col.get(p));
        }
        assert!(m.column(6).none());
        assert!(m.column_fill(7) > 0.0);
        assert_eq!(m.column_fill(6), 0.0);
    }

    #[test]
    fn column_ones_matches_column_extraction() {
        let mut m = BfuMatrix::new(2048, 130);
        for b in 0..130usize {
            for t in 0..(b as u64 % 9) {
                m.insert(b, pair(t * 31 + b as u64), 3);
            }
        }
        let counts = m.column_ones();
        assert_eq!(counts.len(), 130);
        for (b, &count) in counts.iter().enumerate() {
            assert_eq!(count, m.column(b).count_ones(), "column {b}");
        }
    }

    #[test]
    fn fold_merges_column_pairs() {
        for b in [8usize, 70, 128, 130] {
            let mut m = BfuMatrix::new(2048, b);
            // Distinct term per bucket.
            for col in 0..b {
                m.insert(col, pair(col as u64), 2);
            }
            let before: Vec<BitVec> = (0..b).map(|c| m.column(c)).collect();
            m.fold_once().unwrap();
            assert_eq!(m.buckets(), b / 2);
            for c in 0..b / 2 {
                let mut expect = before[c].clone();
                expect.or_assign(&before[c + b / 2]);
                assert_eq!(m.column(c), expect, "B={b} col {c}");
            }
        }
    }

    #[test]
    fn fold_guards() {
        let mut odd = BfuMatrix::new(64, 7);
        assert!(odd.fold_once().is_err());
        let mut tiny = BfuMatrix::new(64, 2);
        assert!(tiny.fold_once().is_err());
    }

    #[test]
    fn stacking_copies_column_windows() {
        // Three shards of 5 columns each → 15-column global, offsets 0/5/10
        // (exercises non-word-aligned shifts).
        let mut global = BfuMatrix::new(1024, 15);
        let mut shards = Vec::new();
        for node in 0..3u64 {
            let mut s = BfuMatrix::new(1024, 5);
            for col in 0..5usize {
                s.insert(col, pair(node * 100 + col as u64), 3);
            }
            shards.push(s);
        }
        for (node, s) in shards.iter().enumerate() {
            global.copy_columns_from(s, node * 5);
        }
        for (node, s) in shards.iter().enumerate() {
            for col in 0..5usize {
                assert_eq!(
                    global.column(node * 5 + col),
                    s.column(col),
                    "node {node} col {col}"
                );
            }
        }
    }

    #[test]
    fn stacking_across_word_boundaries() {
        let mut global = BfuMatrix::new(512, 200);
        let mut src = BfuMatrix::new(512, 90);
        for col in (0..90).step_by(7) {
            src.insert(col, pair(col as u64), 2);
        }
        global.copy_columns_from(&src, 60); // offset 60, spans words 0..3
        for col in 0..90 {
            assert_eq!(global.column(60 + col), src.column(col), "col {col}");
        }
        assert_eq!(global.count_ones(), src.count_ones());
    }

    #[test]
    fn serialization_roundtrip() {
        let mut m = BfuMatrix::new(2048, 77);
        for t in 0..50u64 {
            m.insert((t % 77) as usize, pair(t), 3);
        }
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let mut slice = buf.as_slice();
        let back = BfuMatrix::decode_from(&mut slice).unwrap();
        assert!(slice.is_empty());
        assert_eq!(m, back);
    }

    #[test]
    fn encoded_payload_is_aligned() {
        let m = BfuMatrix::new(64, 10);
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let pad = buf[20] as usize;
        assert_eq!((HEADER_BYTES + pad) % 8, 0);
    }

    #[test]
    fn serialization_rejects_corruption() {
        let m = BfuMatrix::new(64, 10);
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(BfuMatrix::decode_from(&mut bad.as_slice()).is_err());
        assert!(BfuMatrix::decode_from(&mut &buf[..10]).is_err());
        // Dirty tail bits.
        let mut dirty = buf.clone();
        let last = dirty.len() - 1;
        dirty[last] |= 0x80; // bit 63 of a 10-column row
        assert!(BfuMatrix::decode_from(&mut dirty.as_slice()).is_err());
    }

    #[test]
    fn view_decode_matches_owned_and_borrows() {
        let mut m = BfuMatrix::new(1024, 70);
        for t in 0..60u64 {
            m.insert((t % 70) as usize, pair(t), 3);
        }
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let total = buf.len();
        let arc: Arc<[u8]> = buf.into();
        if !(arc.as_ptr() as usize).is_multiple_of(8) {
            return; // 32-bit Arc layouts may misalign the payload; the
                    // loader correctly errors there (see store.rs tests)
        }
        let mut pos = 0;
        let view = BfuMatrix::decode_view(&arc, &mut pos).unwrap();
        assert_eq!(pos, total);
        assert!(view.is_view());
        assert!(view.payload_borrows(&arc));
        assert_eq!(view, m);
        // Probes agree between owned and viewed storage.
        let mut a = BitVec::zeros(70);
        let mut b = BitVec::zeros(70);
        for t in 0..70u64 {
            m.probe_all_into(&[pair(t)], 3, &mut a);
            view.probe_all_into(&[pair(t)], 3, &mut b);
            assert_eq!(a, b, "term {t}");
        }
    }

    #[test]
    fn view_decode_rejects_misaligned_offset() {
        // Encoding pads relative to the *current* buffer, so embedding at an
        // odd offset normally still aligns. Force misalignment by encoding
        // standalone (pad for origin 0) and then shifting the bytes by one.
        let m = BfuMatrix::new(256, 10);
        let mut standalone = Vec::new();
        m.encode_into(&mut standalone);
        let mut shifted = vec![0u8; 1];
        shifted.extend_from_slice(&standalone);
        let arc: Arc<[u8]> = shifted.into();
        if (arc.as_ptr() as usize).is_multiple_of(8) {
            let mut pos = 1;
            assert!(
                BfuMatrix::decode_view(&arc, &mut pos).is_err(),
                "misaligned payload must be an error, never UB"
            );
            // The copying path has no alignment requirement.
            assert!(BfuMatrix::decode_from(&mut &arc[1..]).is_ok());
        }
    }

    #[test]
    fn viewed_matrix_promotes_on_insert() {
        let mut m = BfuMatrix::new(512, 12);
        m.insert(3, pair(9), 2);
        let mut buf = Vec::new();
        m.encode_into(&mut buf);
        let arc: Arc<[u8]> = buf.into();
        if !(arc.as_ptr() as usize).is_multiple_of(8) {
            return; // 32-bit Arc layouts may misalign the payload; the
                    // loader correctly errors there (see store.rs tests)
        }
        let mut pos = 0;
        let mut view = BfuMatrix::decode_view(&arc, &mut pos).unwrap();
        view.insert(5, pair(10), 2);
        assert!(!view.is_view(), "mutation must promote to owned");
        assert!(view.probe_bucket(3, &[pair(9)], 2));
        assert!(view.probe_bucket(5, &[pair(10)], 2));
    }
}
