//! Batch-parallel ingestion and query engine.
//!
//! The term-at-a-time paths ([`Rambo::insert_term_u64`],
//! [`Rambo::query_terms_with`]) pay their full cost per term: every insertion
//! re-derives the document's bucket, hashes, and scatters `η` single-bit
//! writes across all `R` matrices; every query re-probes from scratch. At
//! RAMBO's design point — millions of k-mers per document, thousands of
//! queries per batch — both hot paths are dominated by redundant hashing and
//! cache-hostile write patterns.
//!
//! This module amortizes both:
//!
//! * **Ingestion** ([`Rambo::insert_document_batch`]): the document's term
//!   set is deduplicated once, each unique term is hashed once per
//!   repetition, the resulting filter positions are grouped (sorted) by
//!   matrix row so the bit writes walk each repetition's matrix
//!   monotonically, and the `R` independent tables fan out across scoped
//!   threads — the same per-table independence [`crate::sharded`] exploits
//!   across nodes. The produced index is **bit-identical** to term-at-a-time
//!   insertion (bit-setting is idempotent and commutative per table), which
//!   the property suite asserts via full `PartialEq`.
//! * **Query** ([`QueryBatch`]): many queries evaluated against one shared
//!   [`QueryContext`], with the `B`-bit bucket mask of every *(term,
//!   repetition)* pair memoized — a batch whose queries share terms (the
//!   common case for sequence workloads: overlapping k-mer windows) probes
//!   each distinct term's rows exactly once.

use crate::error::RamboError;
use crate::index::{DocId, Rambo};
use crate::query::{QueryContext, QueryMode};
use rambo_bitvec::BitVec;
use rambo_hash::{FastMap, HashPair};

/// Below this much per-table work (unique terms × η bit writes), thread
/// spawn/join overhead outweighs the parallel win and insertion stays on the
/// calling thread. Determinism is unaffected — the tables are independent.
const PARALLEL_MIN_WRITES: usize = 1 << 13;

/// Per-table matrix size above which staged writes are worth sorting by row:
/// once a table outgrows the last-level cache, random row writes are
/// DRAM-latency-bound and a sorted sweep (sequential, prefetchable) wins.
/// Below it the matrix is cache-resident and the O(n log n) sort costs more
/// than it saves, so the engine sweeps terms directly — still one repetition
/// at a time, which keeps a single table hot instead of cycling all `R`
/// matrices through the cache per term like the term-at-a-time path does.
/// Shared with [`crate::pipeline`]'s hash stage, which makes the same call.
pub(crate) const ROW_SORT_MIN_BYTES: usize = 24 << 20;

/// The machine's available parallelism, probed once (the syscall behind
/// `available_parallelism` is not free, and ingestion calls this per
/// document).
#[must_use]
pub fn default_threads() -> usize {
    static THREADS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *THREADS.get_or_init(|| std::thread::available_parallelism().map_or(1, std::num::NonZero::get))
}

impl Rambo {
    /// Register a document and insert its whole term set through the batch
    /// engine, fanning the `R` repetitions out over up to
    /// `available_parallelism` threads for large documents.
    ///
    /// Produces an index bit-identical to [`Rambo::add_document`] followed by
    /// [`Rambo::insert_term_u64`] per term (duplicates included in the
    /// [`Rambo::total_inserts`] accounting, exactly like the loop would).
    ///
    /// # Errors
    /// [`RamboError::DuplicateDocument`] when the name is already indexed.
    pub fn insert_document_batch(
        &mut self,
        name: &str,
        terms: &[u64],
    ) -> Result<DocId, RamboError> {
        self.insert_document_batch_with(name, terms, default_threads())
    }

    /// [`Rambo::insert_document_batch`] with an explicit thread budget
    /// (`threads == 1` forces fully sequential insertion; the result is
    /// identical either way).
    ///
    /// # Errors
    /// [`RamboError::DuplicateDocument`] when the name is already indexed.
    ///
    /// # Panics
    /// Panics if `threads == 0` or a worker thread panics.
    pub fn insert_document_batch_with(
        &mut self,
        name: &str,
        terms: &[u64],
        threads: usize,
    ) -> Result<DocId, RamboError> {
        let id = self.add_document(name)?;
        self.insert_terms_batch_with(id, terms, threads)?;
        Ok(id)
    }

    /// Insert a term batch for an already-registered document with an
    /// explicit thread budget.
    ///
    /// # Errors
    /// [`RamboError::UnknownDocument`] if `doc` was not issued by this index.
    ///
    /// # Panics
    /// Panics if `threads == 0` or a worker thread panics.
    pub fn insert_terms_batch_with(
        &mut self,
        doc: DocId,
        terms: &[u64],
        threads: usize,
    ) -> Result<(), RamboError> {
        assert!(threads > 0, "need at least one thread");
        if doc as usize >= self.doc_names.len() {
            return Err(RamboError::UnknownDocument(doc));
        }
        if terms.is_empty() {
            return Ok(());
        }
        let mut owned: Vec<u64> = Vec::new();
        let unique = dedupe_terms(terms, &mut owned);

        let eta = self.params().eta;
        let m = self.params().bfu_bits as u64;
        // Disjoint field borrows: each worker owns one table exclusively.
        let seeds = &self.bloom_seeds;
        let tables = &mut self.tables;

        let spec = |seed: u64| RepInsert {
            seed,
            eta,
            m,
            row_sort_min_bytes: ROW_SORT_MIN_BYTES,
        };
        let per_table_writes = unique.len() * eta as usize;
        if threads == 1 || tables.len() == 1 || per_table_writes < PARALLEL_MIN_WRITES {
            let mut rows = Vec::new();
            for (table, &seed) in tables.iter_mut().zip(seeds) {
                insert_table(table, doc, unique, &mut rows, spec(seed));
            }
        } else {
            std::thread::scope(|scope| {
                // Chunk the R independent tables over at most `threads`
                // scoped workers (R is small — 2..8 — so this is the whole
                // fan-out; each worker is pure CPU on its own tables).
                let chunk = tables.len().div_ceil(threads);
                let mut handles = Vec::new();
                for (c, table_chunk) in tables.chunks_mut(chunk).enumerate() {
                    let seed_chunk = &seeds[c * chunk..c * chunk + table_chunk.len()];
                    handles.push(scope.spawn(move || {
                        let mut rows = Vec::new();
                        for (table, &seed) in table_chunk.iter_mut().zip(seed_chunk) {
                            insert_table(table, doc, unique, &mut rows, spec(seed));
                        }
                    }));
                }
                for h in handles {
                    h.join().expect("batch insertion worker panicked");
                }
            });
        }
        // Multiplicity accounting matches the term-at-a-time loop.
        self.inserts += terms.len() as u64;
        Ok(())
    }
}

/// Dedupe a term batch once for all repetitions: Bloom insertion is
/// idempotent, so duplicates would only re-hash and re-write the same bits.
/// Inputs that are already strictly sorted (KmerSet output, the synthetic
/// archives) skip the sort entirely; otherwise `scratch` receives the
/// sorted-deduped copy and the returned slice borrows it. Shared by the
/// in-place batch engine and the [`crate::pipeline`] hash stage.
pub(crate) fn dedupe_terms<'a>(terms: &'a [u64], scratch: &'a mut Vec<u64>) -> &'a [u64] {
    if terms.windows(2).all(|w| w[0] < w[1]) {
        terms
    } else {
        scratch.clear();
        scratch.extend_from_slice(terms);
        scratch.sort_unstable();
        scratch.dedup();
        scratch
    }
}

/// Per-repetition insertion parameters shared by every table of one batch
/// (all but the Bloom seed are identical across repetitions).
#[derive(Clone, Copy)]
struct RepInsert {
    seed: u64,
    eta: u32,
    m: u64,
    row_sort_min_bytes: usize,
}

/// Insert one repetition's worth of a document batch: hash every unique term
/// once for this repetition's Bloom family and set the bucket's filter bits.
///
/// For cache-resident tables the terms are swept directly (the whole sweep
/// touches only this one matrix, so it stays hot). For tables past
/// `spec.row_sort_min_bytes` (normally [`ROW_SORT_MIN_BYTES`]) the
/// `(row, bucket-bit)` updates are staged and sorted by matrix row first,
/// turning DRAM-latency-bound random writes into a prefetchable sequential
/// walk.
fn insert_table(
    table: &mut crate::index::Table,
    doc: DocId,
    unique: &[u64],
    rows: &mut Vec<usize>,
    spec: RepInsert,
) {
    let bucket = table.assign[doc as usize] as usize;
    if table.matrix.size_bytes() < spec.row_sort_min_bytes {
        for &t in unique {
            let pair = HashPair::of_u64(t, spec.seed);
            table.matrix.insert(bucket, pair, spec.eta);
        }
    } else {
        rows.clear();
        rows.reserve(unique.len() * spec.eta as usize);
        for &t in unique {
            let pair = HashPair::of_u64(t, spec.seed);
            for i in 0..spec.eta {
                rows.push(pair.index(i, spec.m) as usize);
            }
        }
        rows.sort_unstable();
        table.matrix.set_rows(bucket, rows);
    }
}

/// LRU budget (in blob bytes) for the per-term mask memo, sized to a typical
/// server last-level cache: masks that outlive the LLC stop paying for
/// themselves (the memo's hash lookup costs more than the probe it saves
/// once the working set thrashes — see ROADMAP "mask-cache eviction").
const DEFAULT_MASK_CACHE_BYTES: usize = 32 << 20;

/// Sentinel link for the intrusive LRU list.
const NIL: u32 = u32::MAX;

/// One resident entry's term and LRU links; its mask blob lives in the
/// shared [`MaskCache::blobs`] arena at `slot_index * blob_words`.
struct MaskSlot {
    term: u64,
    prev: u32,
    next: u32,
}

/// Bounded LRU memo: term → its `R` bucket masks as one flat
/// repetition-major word blob. A `FastMap` indexes into a slot arena that
/// doubles as an intrusive doubly-linked recency list, so get/insert/evict
/// are all O(1); blobs live side by side in one arena vector, so inserting
/// a cold term allocates nothing and terms memoized together (a query's
/// window) stay contiguous for the warm-path reads.
struct MaskCache {
    cap: usize,
    /// Words per blob — one geometry per cache.
    blob_words: usize,
    map: FastMap<u64, u32>,
    slots: Vec<MaskSlot>,
    /// Flat blob arena; slot `s` owns `blobs[s * blob_words..][..blob_words]`.
    blobs: Vec<u64>,
    /// Most-recently-used slot.
    head: u32,
    /// Least-recently-used slot (the eviction victim).
    tail: u32,
}

impl MaskCache {
    fn new(cap: usize, blob_words: usize) -> Self {
        let cap = cap.max(1);
        // Reserve the map, slot arena and blob arena up front (bounded for
        // pathological caps): growing them organically means rehash/realloc
        // pauses of hundreds of microseconds to milliseconds *during
        // serving* once the memo holds tens of thousands of terms — a
        // latency cliff in exactly the long-lived evaluators the memo
        // exists for. Reserved-but-unused pages are virtual and cost
        // nothing until touched.
        let reserve = cap.min(1 << 20);
        let mut map = FastMap::default();
        map.reserve(reserve);
        // Prefault the arenas (write-then-clear keeps the committed pages):
        // growing into untouched reserved pages takes a soft page fault per
        // 4 KiB, and a cold query inserting ~200 blobs crosses enough page
        // boundaries to smear hundreds of microseconds across the first
        // minutes of serving.
        let mut slots = Vec::new();
        slots.resize_with(reserve, || MaskSlot {
            term: 0,
            prev: NIL,
            next: NIL,
        });
        slots.clear();
        let mut blobs = vec![0u64; reserve * blob_words];
        blobs.clear();
        Self {
            cap,
            blob_words,
            map,
            slots,
            blobs,
            head: NIL,
            tail: NIL,
        }
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    /// Detach a slot from the recency list.
    fn unlink(&mut self, s: u32) {
        let (prev, next) = (self.slots[s as usize].prev, self.slots[s as usize].next);
        if prev == NIL {
            self.head = next;
        } else {
            self.slots[prev as usize].next = next;
        }
        if next == NIL {
            self.tail = prev;
        } else {
            self.slots[next as usize].prev = prev;
        }
    }

    /// Attach a slot at the MRU end.
    fn push_front(&mut self, s: u32) {
        self.slots[s as usize].prev = NIL;
        self.slots[s as usize].next = self.head;
        if self.head != NIL {
            self.slots[self.head as usize].prev = s;
        }
        self.head = s;
        if self.tail == NIL {
            self.tail = s;
        }
    }

    /// Hit-path lookup: bump the term to most-recently-used and return its
    /// blob, or `None` if not resident.
    fn get(&mut self, term: u64) -> Option<&[u64]> {
        let &s = self.map.get(&term)?;
        if self.head != s {
            self.unlink(s);
            self.push_front(s);
        }
        let start = s as usize * self.blob_words;
        Some(&self.blobs[start..start + self.blob_words])
    }

    /// Look up a term's blob (bumping it to most-recently-used), filling it
    /// via `fill` on a miss — one hash lookup on the hit path. At capacity
    /// the evicted entry's allocation is handed to `fill` for reuse, so a
    /// full cache stops allocating (`fill` must overwrite every word).
    fn get_or_insert_with(
        &mut self,
        term: u64,
        blob_words: usize,
        fill: impl FnOnce(&mut [u64]),
    ) -> &[u64] {
        debug_assert_eq!(blob_words, self.blob_words, "one geometry per cache");
        if let Some(&s) = self.map.get(&term) {
            if self.head != s {
                self.unlink(s);
                self.push_front(s);
            }
            let start = s as usize * self.blob_words;
            return &self.blobs[start..start + self.blob_words];
        }
        let s = if self.map.len() >= self.cap {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let slot = &mut self.slots[victim as usize];
            self.map.remove(&slot.term);
            slot.term = term;
            victim
        } else {
            let s = u32::try_from(self.slots.len()).expect("mask cache capacity exceeds u32");
            self.slots.push(MaskSlot {
                term,
                prev: NIL,
                next: NIL,
            });
            self.blobs.resize(self.blobs.len() + self.blob_words, 0);
            s
        };
        let start = s as usize * self.blob_words;
        fill(&mut self.blobs[start..start + self.blob_words]);
        self.map.insert(term, s);
        self.push_front(s);
        &self.blobs[start..start + self.blob_words]
    }

    /// Non-bumping membership probe (diagnostics/tests).
    fn contains(&self, term: u64) -> bool {
        self.map.contains_key(&term)
    }
}

/// Shared-scratch batch evaluator for Algorithm 2 with per-term bucket-mask
/// memoization.
///
/// Holds an immutable borrow of the index for its lifetime, so memoized
/// masks can never go stale (fold-over or insertion require `&mut Rambo`).
/// [`QueryMode::Full`] queries AND memoized per-term masks; RAMBO+
/// ([`QueryMode::Sparse`]) queries share the scratch context but skip the
/// mask cache — sparse evaluation only probes the buckets that still hold
/// candidates, so a full `B × R` mask would cost more than it saves.
///
/// The memo is **bounded**: an LRU policy caps resident blobs at a byte
/// budget defaulting to a last-level-cache-sized
/// `DEFAULT_MASK_CACHE_BYTES` (long-running servers would otherwise grow
/// the map without limit, and masks evicted from the LLC stop being
/// cheaper than a re-probe anyway). Use [`QueryBatch::with_mask_capacity`]
/// to tune the entry count directly.
///
/// ```
/// use rambo_core::{QueryBatch, QueryMode, Rambo, RamboParams};
///
/// let mut index = Rambo::new(RamboParams::flat(8, 3, 1 << 12, 2, 7)).unwrap();
/// let a = index.insert_document("doc-a", [1u64, 2, 3]).unwrap();
/// let b = index.insert_document("doc-b", [2u64, 3, 4]).unwrap();
///
/// // Queries sharing terms probe each distinct term's rows exactly once.
/// let mut batch = QueryBatch::new(&index);
/// let results = batch.run(&[vec![2], vec![2, 3], vec![4]], QueryMode::Full);
/// assert_eq!(results[0], vec![a, b]); // term 2 is in both documents
/// assert_eq!(results[1], vec![a, b]); // both contain {2, 3}
/// assert_eq!(results[2], vec![b]);
/// ```
pub struct QueryBatch<'i> {
    index: &'i Rambo,
    ctx: QueryContext,
    /// Bounded per-term mask memo (`R × ⌈B/64⌉` words per entry).
    masks: MaskCache,
    /// Cold-term scratch for the bulk miss fill: the deduplicated missing
    /// terms, their per-repetition hash pairs, and a rep-major mask staging
    /// area (reused across queries so the miss path never allocates).
    miss_terms: Vec<u64>,
    miss_pairs: Vec<HashPair>,
    miss_masks: Vec<u64>,
    /// Per-repetition combined-mask scratch (`R` masks of `B` bits), so the
    /// evaluation loop does one cache lookup per *term* rather than per
    /// `(term, repetition)`.
    rep_masks: Vec<BitVec>,
}

impl<'i> QueryBatch<'i> {
    /// Create an evaluator bound to `index`, with the default
    /// LLC-sized mask-cache budget.
    #[must_use]
    pub fn new(index: &'i Rambo) -> Self {
        let blob_bytes = index.repetitions() * (index.buckets() as usize).div_ceil(64) * 8;
        // Entry overhead: slot links + map entry, roughly one cache line.
        let cap = DEFAULT_MASK_CACHE_BYTES / (blob_bytes + 64).max(1);
        Self::with_mask_capacity(index, cap)
    }

    /// Create an evaluator whose mask memo holds at most `capacity` terms
    /// (clamped to at least 1); least-recently-used terms are evicted and
    /// transparently re-probed if queried again.
    #[must_use]
    pub fn with_mask_capacity(index: &'i Rambo, capacity: usize) -> Self {
        Self {
            index,
            ctx: QueryContext::new(),
            masks: MaskCache::new(
                capacity,
                index.repetitions() * (index.buckets() as usize).div_ceil(64),
            ),
            miss_terms: Vec::new(),
            miss_pairs: Vec::new(),
            miss_masks: Vec::new(),
            rep_masks: (0..index.repetitions())
                .map(|_| BitVec::zeros(index.buckets() as usize))
                .collect(),
        }
    }

    /// Number of distinct terms whose masks are currently memoized.
    #[must_use]
    pub fn memoized_terms(&self) -> usize {
        self.masks.len()
    }

    /// Maximum number of memoized terms before LRU eviction kicks in.
    #[must_use]
    pub fn mask_capacity(&self) -> usize {
        self.masks.cap
    }

    /// Is this term's mask currently resident? (Non-bumping; diagnostics.)
    #[must_use]
    pub fn is_memoized(&self, term: u64) -> bool {
        self.masks.contains(term)
    }

    /// Evaluate one query (Algorithm 2 semantics: a BFU matches only if it
    /// contains *all* terms). Returns exactly what
    /// [`Rambo::query_terms_with`] returns for the same inputs.
    #[must_use]
    pub fn query_terms(&mut self, terms: &[u64], mode: QueryMode) -> Vec<DocId> {
        match mode {
            QueryMode::Sparse => self.index.query_terms_with(terms, mode, &mut self.ctx),
            QueryMode::Full => self.query_full_memoized(terms),
        }
    }

    /// Evaluate a batch of queries, reusing scratch and memoized masks
    /// across all of them. Results are in input order.
    #[must_use]
    pub fn run<Q: AsRef<[u64]>>(&mut self, queries: &[Q], mode: QueryMode) -> Vec<Vec<DocId>> {
        queries
            .iter()
            .map(|q| self.query_terms(q.as_ref(), mode))
            .collect()
    }

    /// Full-mode evaluation over memoized masks. Probing rows for a term
    /// happens at most once per index lifetime; each query is then `R`
    /// word-wise mask ANDs plus the union/intersection walk.
    ///
    /// Cold terms are *deferred*: resident terms are consumed in a first
    /// pass, then every missing term's rows are probed in one interleaved
    /// bulk sweep per repetition ([`BfuMatrix::probe_pairs_into`]). A
    /// term-at-a-time fill serializes one random DRAM read behind another,
    /// which made a query's first sighting of a document ~3× slower than a
    /// memo-free evaluation — the bulk sweep overlaps the misses, so a cold
    /// query costs about the same as a direct one.
    fn query_full_memoized(&mut self, terms: &[u64]) -> Vec<DocId> {
        let index = self.index;
        let k = index.num_documents();
        if k == 0 || terms.is_empty() {
            return Vec::new();
        }
        let b = index.buckets() as usize;
        let eta = index.params().eta;
        let mask_words = b.div_ceil(64);
        let blob_words = index.repetitions() * mask_words;
        for mask in &mut self.rep_masks {
            mask.set_all();
        }
        // Pass 1: resident terms — one memo lookup each (disjoint-field
        // borrows: `masks` is the cache, `rep_masks` the accumulators),
        // ANDed straight into the repetition masks.
        self.miss_terms.clear();
        for &t in terms {
            let Some(blob) = self.masks.get(t) else {
                self.miss_terms.push(t);
                continue;
            };
            let mut all_live = true;
            for (rep, mask) in self.rep_masks.iter_mut().enumerate() {
                all_live &= mask.and_words_any(&blob[rep * mask_words..(rep + 1) * mask_words]);
            }
            if !all_live {
                // Some repetition's bucket mask died: its union is empty, so
                // the intersection is conclusively empty.
                return Vec::new();
            }
        }
        // Pass 2: cold terms, bulk-probed into a rep-major staging area,
        // then gathered into blobs. Each blob is memoized and consumed
        // immediately — consume-before-evict, so a query with more cold
        // terms than the memo capacity still evaluates correctly.
        if !self.miss_terms.is_empty() {
            self.miss_terms.sort_unstable();
            self.miss_terms.dedup();
            let n = self.miss_terms.len();
            self.miss_masks.clear();
            self.miss_masks.resize(n * blob_words, 0);
            for (rep, table) in index.tables.iter().enumerate() {
                self.miss_pairs.clear();
                let miss_terms = &self.miss_terms;
                self.miss_pairs
                    .extend(miss_terms.iter().map(|&t| index.hash_u64_rep(rep, t)));
                table.matrix.probe_pairs_into(
                    &self.miss_pairs,
                    eta,
                    &mut self.miss_masks[rep * n * mask_words..(rep + 1) * n * mask_words],
                );
            }
            let mut dead = false;
            for i in 0..n {
                let (t, miss_masks) = (self.miss_terms[i], &self.miss_masks);
                let blob = self.masks.get_or_insert_with(t, blob_words, |blob| {
                    for rep in 0..index.repetitions() {
                        let src = (rep * n + i) * mask_words;
                        blob[rep * mask_words..(rep + 1) * mask_words]
                            .copy_from_slice(&miss_masks[src..src + mask_words]);
                    }
                });
                // The rows are already probed, so the remaining terms stay
                // worth memoizing even after the result is known-empty.
                if dead {
                    continue;
                }
                let mut all_live = true;
                for (rep, mask) in self.rep_masks.iter_mut().enumerate() {
                    all_live &= mask.and_words_any(&blob[rep * mask_words..(rep + 1) * mask_words]);
                }
                dead = !all_live;
            }
            if dead {
                return Vec::new();
            }
        }
        self.ctx.ensure(k, b);
        let (acc, tbl, _) = self.ctx.full_mode_buffers();
        for (rep, table) in index.tables.iter().enumerate() {
            let mask = &self.rep_masks[rep];
            tbl.clear_all();
            for bucket in mask.iter_ones() {
                for &d in &table.buckets[bucket] {
                    tbl.set(d as usize);
                }
            }
            // Fused AND + liveness, mirroring the per-call evaluator.
            let live = if rep == 0 {
                acc.copy_from(tbl);
                acc.any()
            } else {
                acc.and_assign_any(tbl)
            };
            if !live {
                return Vec::new();
            }
        }
        acc.iter_ones()
            .filter(|&d| d < k)
            .map(|d| d as DocId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RamboParams;

    fn archive(k: usize, terms_per_doc: usize) -> Vec<(String, Vec<u64>)> {
        (0..k)
            .map(|d| {
                let base = (d as u64) << 32;
                let mut ts: Vec<u64> = (0..terms_per_doc as u64).map(|t| base | t).collect();
                ts.push(0xFFFF); // shared term
                ts.push(base); // duplicate of term 0
                (format!("doc-{d}"), ts)
            })
            .collect()
    }

    fn params(seed: u64) -> RamboParams {
        RamboParams::flat(8, 4, 1 << 13, 2, seed)
    }

    #[test]
    fn batch_is_bit_identical_to_term_at_a_time() {
        let docs = archive(25, 60);
        for threads in [1, 4] {
            let mut serial = Rambo::new(params(9)).unwrap();
            let mut batch = Rambo::new(params(9)).unwrap();
            for (name, terms) in &docs {
                let d = serial.add_document(name).unwrap();
                for &t in terms {
                    serial.insert_term_u64(d, t).unwrap();
                }
                batch
                    .insert_document_batch_with(name, terms, threads)
                    .unwrap();
            }
            assert_eq!(serial, batch, "threads = {threads}");
            assert_eq!(serial.total_inserts(), batch.total_inserts());
        }
    }

    /// The row-sorted staged write path only engages for tables past
    /// [`ROW_SORT_MIN_BYTES`] in production; force it here (threshold 0) so
    /// the large-table branch is covered by the bit-identity guarantee too.
    #[test]
    fn row_sorted_write_path_is_bit_identical() {
        let docs = archive(12, 120);
        let mut serial = Rambo::new(params(21)).unwrap();
        let mut staged = Rambo::new(params(21)).unwrap();
        for (name, terms) in &docs {
            let d = serial.add_document(name).unwrap();
            for &t in terms {
                serial.insert_term_u64(d, t).unwrap();
            }

            let id = staged.add_document(name).unwrap();
            let mut unique = terms.clone();
            unique.sort_unstable();
            unique.dedup();
            let eta = staged.params().eta;
            let m = staged.params().bfu_bits as u64;
            let seeds = staged.bloom_seeds.clone();
            let mut rows = Vec::new();
            for (table, &seed) in staged.tables.iter_mut().zip(&seeds) {
                super::insert_table(
                    table,
                    id,
                    &unique,
                    &mut rows,
                    super::RepInsert {
                        seed,
                        eta,
                        m,
                        row_sort_min_bytes: 0,
                    },
                );
            }
            staged.inserts += terms.len() as u64;
        }
        assert_eq!(serial, staged, "staged row-sorted writes must be lossless");
    }

    #[test]
    fn parallel_fanout_crosses_the_threshold() {
        // Enough work per table to take the scoped-thread path.
        let big: Vec<u64> = (0..(super::PARALLEL_MIN_WRITES as u64)).collect();
        let mut seq = Rambo::new(params(3)).unwrap();
        let mut par = Rambo::new(params(3)).unwrap();
        seq.insert_document_batch_with("big", &big, 1).unwrap();
        par.insert_document_batch_with("big", &big, 4).unwrap();
        assert_eq!(seq, par);
    }

    #[test]
    fn batch_rejects_duplicates_and_unknown_docs() {
        let mut r = Rambo::new(params(1)).unwrap();
        r.insert_document_batch("a", &[1, 2]).unwrap();
        assert!(matches!(
            r.insert_document_batch("a", &[3]),
            Err(RamboError::DuplicateDocument(_))
        ));
        assert!(matches!(
            r.insert_terms_batch_with(99, &[1], 1),
            Err(RamboError::UnknownDocument(99))
        ));
    }

    #[test]
    fn empty_batch_is_a_registered_empty_document() {
        let mut r = Rambo::new(params(2)).unwrap();
        let d = r.insert_document_batch("empty", &[]).unwrap();
        assert_eq!(r.num_documents(), 1);
        assert_eq!(r.total_inserts(), 0);
        assert!(r.query_u64(123).is_empty() || !r.query_u64(123).contains(&d));
    }

    #[test]
    fn query_batch_matches_per_call_results() {
        let docs = archive(30, 40);
        let mut r = Rambo::new(params(7)).unwrap();
        for (name, terms) in &docs {
            r.insert_document_batch(name, terms).unwrap();
        }
        // Single-term, multi-term, and absent-term queries, with repeats to
        // exercise memoization.
        let mut queries: Vec<Vec<u64>> = docs.iter().map(|(_, ts)| ts[..1].to_vec()).collect();
        queries.push(vec![0xFFFF]);
        queries.push(vec![0xFFFF]);
        queries.push(docs[3].1[..4].to_vec());
        queries.extend((0..20).map(|i| vec![0xDEAD_0000_0000u64 + i]));
        for mode in [QueryMode::Full, QueryMode::Sparse] {
            let mut ctx = QueryContext::new();
            let expected: Vec<Vec<DocId>> = queries
                .iter()
                .map(|q| r.query_terms_with(q, mode, &mut ctx))
                .collect();
            let mut batch = QueryBatch::new(&r);
            let got = batch.run(&queries, mode);
            assert_eq!(got, expected, "mode {mode:?}");
        }
    }

    /// Eviction correctness: the memo never exceeds its capacity, evicts in
    /// LRU order (recency includes hits, not just inserts), and evicted
    /// terms are transparently re-probed with identical results.
    #[test]
    fn mask_cache_evicts_lru_and_stays_correct() {
        let docs = archive(20, 30);
        let mut r = Rambo::new(params(17)).unwrap();
        for (name, terms) in &docs {
            r.insert_document_batch(name, terms).unwrap();
        }
        let (a, b, c) = (docs[0].1[0], docs[1].1[0], docs[2].1[0]);

        let mut batch = QueryBatch::with_mask_capacity(&r, 2);
        assert_eq!(batch.mask_capacity(), 2);
        let res_a = batch.query_terms(&[a], QueryMode::Full);
        let res_b = batch.query_terms(&[b], QueryMode::Full);
        assert_eq!(batch.memoized_terms(), 2);
        // Touch `a` so `b` becomes the LRU victim.
        assert_eq!(batch.query_terms(&[a], QueryMode::Full), res_a);
        let res_c = batch.query_terms(&[c], QueryMode::Full);
        assert_eq!(batch.memoized_terms(), 2, "capacity is a hard bound");
        assert!(batch.is_memoized(a), "recently hit entry must survive");
        assert!(!batch.is_memoized(b), "LRU entry must be evicted");
        assert!(batch.is_memoized(c));
        // Evicted term re-probes to the same answer.
        assert_eq!(batch.query_terms(&[b], QueryMode::Full), res_b);
        assert!(batch.is_memoized(b) && !batch.is_memoized(a));
        assert_eq!(batch.query_terms(&[c], QueryMode::Full), res_c);

        // A query with more distinct terms than the capacity still equals
        // the per-call evaluator (consume-before-evict).
        let wide: Vec<u64> = docs.iter().take(6).map(|(_, ts)| ts[0]).collect();
        let mut ctx = QueryContext::new();
        assert_eq!(
            batch.query_terms(&wide, QueryMode::Full),
            r.query_terms_with(&wide, QueryMode::Full, &mut ctx)
        );
        assert_eq!(batch.memoized_terms(), 2);
    }

    #[test]
    fn mask_cache_capacity_is_clamped_to_one() {
        let docs = archive(5, 10);
        let mut r = Rambo::new(params(19)).unwrap();
        for (name, terms) in &docs {
            r.insert_document_batch(name, terms).unwrap();
        }
        let mut batch = QueryBatch::with_mask_capacity(&r, 0);
        assert_eq!(batch.mask_capacity(), 1);
        let mut ctx = QueryContext::new();
        for (_, terms) in &docs {
            let q = &terms[..2];
            assert_eq!(
                batch.query_terms(q, QueryMode::Full),
                r.query_terms_with(q, QueryMode::Full, &mut ctx)
            );
            assert_eq!(batch.memoized_terms(), 1);
        }
    }

    #[test]
    fn default_mask_capacity_is_llc_sized() {
        let r = Rambo::new(params(23)).unwrap();
        let batch = QueryBatch::new(&r);
        let blob_bytes = r.repetitions() * (r.buckets() as usize).div_ceil(64) * 8;
        assert_eq!(
            batch.mask_capacity(),
            super::DEFAULT_MASK_CACHE_BYTES / (blob_bytes + 64)
        );
    }

    #[test]
    fn query_batch_memoizes_unique_terms() {
        let docs = archive(10, 20);
        let mut r = Rambo::new(params(5)).unwrap();
        for (name, terms) in &docs {
            r.insert_document_batch(name, terms).unwrap();
        }
        let mut batch = QueryBatch::new(&r);
        let q = vec![0xFFFFu64];
        for _ in 0..50 {
            let hits = batch.query_terms(&q, QueryMode::Full);
            assert_eq!(hits.len(), 10);
        }
        assert_eq!(
            batch.memoized_terms(),
            1,
            "repeat queries must hit the memo"
        );
    }
}
