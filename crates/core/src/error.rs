//! Error type for RAMBO construction, mutation and serialization.

use rambo_bitvec::DecodeError;
use rambo_bloom::BloomError;
use std::fmt;

/// Errors surfaced by the RAMBO index.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RamboError {
    /// Parameters fail validation (zero dimensions, B < 2, …).
    InvalidParams(String),
    /// A document with this name is already registered; document identity is
    /// the partition-hash input, so duplicates would silently alias buckets.
    DuplicateDocument(String),
    /// A document id not issued by this index was used.
    UnknownDocument(u32),
    /// Fold-over requested but the current bucket count is not divisible by
    /// two (or folding would leave fewer than one bucket).
    FoldUnavailable(String),
    /// Binary deserialization failed.
    Decode(DecodeError),
    /// A Bloom-filter level operation failed (parameter mismatch on merge).
    Bloom(BloomError),
}

impl fmt::Display for RamboError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidParams(msg) => write!(f, "invalid RAMBO parameters: {msg}"),
            Self::DuplicateDocument(name) => write!(f, "document already indexed: {name}"),
            Self::UnknownDocument(id) => write!(f, "unknown document id: {id}"),
            Self::FoldUnavailable(msg) => write!(f, "cannot fold: {msg}"),
            Self::Decode(e) => write!(f, "RAMBO decode failed: {e}"),
            Self::Bloom(e) => write!(f, "bloom layer error: {e}"),
        }
    }
}

impl std::error::Error for RamboError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Decode(e) => Some(e),
            Self::Bloom(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DecodeError> for RamboError {
    fn from(e: DecodeError) -> Self {
        Self::Decode(e)
    }
}

impl From<BloomError> for RamboError {
    fn from(e: BloomError) -> Self {
        Self::Bloom(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(RamboError::InvalidParams("B=0".into())
            .to_string()
            .contains("B=0"));
        assert!(RamboError::DuplicateDocument("x".into())
            .to_string()
            .contains('x'));
        assert!(RamboError::UnknownDocument(9).to_string().contains('9'));
        assert!(RamboError::FoldUnavailable("odd B".into())
            .to_string()
            .contains("odd B"));
    }
}
