//! Algorithm 2 (query), the RAMBO+ sparse evaluation of §5.1, and the
//! large-sequence query protocol of §3.3.1.
//!
//! A query against one repetition is: probe the BFUs (η contiguous row reads
//! of the position-major matrix, ANDed into a `B`-bit bucket mask — see
//! [`crate::matrix`]), union the document sets of the buckets whose BFU
//! answered *true*, and intersect those unions across repetitions. The
//! paper's §5.1 measured the AND at under 5% of query cycles; the row-major
//! probe plus word-AND here reproduces that design.
//!
//! Terms are hashed **once per repetition** (each repetition has an
//! independent Bloom family — see the seed discussion on [`Rambo`]); the
//! per-repetition [`rambo_hash::HashPair`]s are cached in the
//! [`QueryContext`] so multi-table evaluation never re-hashes.
//!
//! Two evaluation strategies:
//!
//! * [`QueryMode::Full`] materializes each repetition's union as a `K`-bit
//!   document bitmap and word-ANDs them (the paper's base RAMBO with
//!   "bitmap arrays", §5.1).
//! * [`QueryMode::Sparse`] is **RAMBO+**: repetitions are evaluated
//!   sequentially over an explicit candidate list — repetition `r` only
//!   probes the buckets that still hold live candidates, memoized. Its cost
//!   is Lemma 4.4's `B·η + (K/B)(V + B·p)·R` with no `O(K)` bitmap pass.

use crate::index::{DocId, Rambo};
use rambo_bitvec::BitVec;
use rambo_hash::HashPair;

/// Evaluation strategy for Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueryMode {
    /// Probe all `B × R` BFUs and intersect `K`-bit bitmaps (base RAMBO).
    #[default]
    Full,
    /// RAMBO+ sparse sequential evaluation over candidate lists (§5.1
    /// "Query time speedup").
    Sparse,
}

/// Reusable query scratch space. Query latency at RAMBO's scale is dominated
/// by cache behaviour; reusing the buffers avoids per-query allocation
/// entirely.
#[derive(Debug)]
pub struct QueryContext {
    /// Per-(repetition, term) hash pairs, repetition-major.
    pub(crate) pairs: Vec<HashPair>,
    /// Bucket mask for the per-table probe (`B` bits).
    pub(crate) mask: BitVec,
    /// Intersection accumulator across repetitions (`K` bits, Full mode).
    pub(crate) acc: BitVec,
    /// Per-repetition union bitmap (`K` bits, Full mode).
    pub(crate) tbl: BitVec,
    /// Probe memo per bucket: 0 unknown, 1 true, 2 false (Sparse mode).
    pub(crate) probes: Vec<u8>,
    /// Live candidates (Sparse mode).
    pub(crate) candidates: Vec<DocId>,
    /// Per-document hit counts for θ-threshold sequence queries.
    pub(crate) counts: Vec<u32>,
}

impl Default for QueryContext {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryContext {
    /// Fresh context; buffers are sized lazily on first use.
    #[must_use]
    pub fn new() -> Self {
        Self {
            pairs: Vec::new(),
            mask: BitVec::zeros(0),
            acc: BitVec::zeros(0),
            tbl: BitVec::zeros(0),
            probes: Vec::new(),
            candidates: Vec::new(),
            counts: Vec::new(),
        }
    }

    /// Size the scratch buffers for an index with `docs` documents and
    /// `buckets` buckets.
    ///
    /// **Invariant: buffer reuse is monotonic.** `acc`/`tbl`/`probes`/
    /// `counts` only ever grow, so a context alternating between indexes of
    /// different geometry keeps its largest allocation instead of thrashing
    /// the allocator. This is sound because every query path fully
    /// re-initializes the prefix it reads: `tbl` is cleared per repetition,
    /// `acc` is overwritten from `tbl` at repetition 0 (and only documents
    /// `< docs` are ever set), `probes[..buckets]` is zeroed per repetition,
    /// and `counts[..docs]` is zeroed per θ-query. Only `mask` is kept at
    /// exactly `buckets` bits: [`crate::matrix::BfuMatrix::probe_all_into`]
    /// requires the mask length to equal the column count, and `set_all`'s
    /// tail masking depends on the true length.
    pub(crate) fn ensure(&mut self, docs: usize, buckets: usize) {
        if self.acc.len() < docs {
            self.acc = BitVec::zeros(docs);
            self.tbl = BitVec::zeros(docs);
        }
        if self.mask.len() != buckets {
            self.mask = BitVec::zeros(buckets);
        }
        if self.probes.len() < buckets {
            self.probes.resize(buckets, 0);
        }
    }

    /// Mutable access to the Full-mode scratch (`acc`, `tbl`, `mask`) for
    /// the batch engine in [`crate::batch`]. Call [`QueryContext::ensure`]
    /// first.
    pub(crate) fn full_mode_buffers(&mut self) -> (&mut BitVec, &mut BitVec, &mut BitVec) {
        (&mut self.acc, &mut self.tbl, &mut self.mask)
    }
}

impl Rambo {
    /// Query a single packed 64-bit term (allocates a fresh context; use
    /// [`Rambo::query_terms_with`] with a reused [`QueryContext`] on hot
    /// paths).
    #[must_use]
    pub fn query_u64(&self, term: u64) -> Vec<DocId> {
        let mut ctx = QueryContext::new();
        self.query_terms_with(&[term], QueryMode::Full, &mut ctx)
    }

    /// Query a single byte term.
    #[must_use]
    pub fn query_bytes(&self, term: &[u8]) -> Vec<DocId> {
        let mut ctx = QueryContext::new();
        self.query_bytes_terms_with(&[term], QueryMode::Full, &mut ctx)
    }

    /// Query a multi-term set under Algorithm 2 semantics (a BFU matches only
    /// if it contains *all* terms).
    #[must_use]
    pub fn query_terms_u64(&self, terms: &[u64], mode: QueryMode) -> Vec<DocId> {
        let mut ctx = QueryContext::new();
        self.query_terms_with(terms, mode, &mut ctx)
    }

    /// The core of Algorithm 2 over packed terms, with caller-owned scratch
    /// space. Returns matching document ids in ascending order.
    ///
    /// Zero false negatives: every document actually containing all terms is
    /// returned (its BFUs contain every term in every repetition, so it
    /// survives each union and the final intersection).
    #[must_use]
    pub fn query_terms_with(
        &self,
        terms: &[u64],
        mode: QueryMode,
        ctx: &mut QueryContext,
    ) -> Vec<DocId> {
        if self.num_documents() == 0 || terms.is_empty() {
            return Vec::new();
        }
        // Hash each term once per repetition, repetition-major.
        ctx.pairs.clear();
        for &seed in &self.bloom_seeds {
            ctx.pairs
                .extend(terms.iter().map(|&t| HashPair::of_u64(t, seed)));
        }
        self.query_hashed(terms.len(), mode, ctx)
    }

    /// [`Rambo::query_terms_with`] for byte terms (words, raw k-mer text).
    #[must_use]
    pub fn query_bytes_terms_with(
        &self,
        terms: &[&[u8]],
        mode: QueryMode,
        ctx: &mut QueryContext,
    ) -> Vec<DocId> {
        if self.num_documents() == 0 || terms.is_empty() {
            return Vec::new();
        }
        ctx.pairs.clear();
        for &seed in &self.bloom_seeds {
            ctx.pairs
                .extend(terms.iter().map(|&t| HashPair::of_bytes(t, seed)));
        }
        self.query_hashed(terms.len(), mode, ctx)
    }

    /// Shared evaluation over the pairs already staged in `ctx.pairs`.
    fn query_hashed(&self, n_terms: usize, mode: QueryMode, ctx: &mut QueryContext) -> Vec<DocId> {
        let k = self.num_documents();
        let b = self.buckets() as usize;
        ctx.ensure(k, b);
        match mode {
            QueryMode::Full => {
                self.query_full(n_terms, ctx);
                ctx.acc.iter_ones().map(|i| i as DocId).collect()
            }
            QueryMode::Sparse => {
                self.query_sparse(n_terms, ctx);
                std::mem::take(&mut ctx.candidates)
            }
        }
    }

    /// Full evaluation: probe every repetition's whole matrix, union into
    /// `K`-bit bitmaps, intersect across repetitions.
    fn query_full(&self, n_terms: usize, ctx: &mut QueryContext) {
        let eta = self.params().eta;
        for (rep, table) in self.tables.iter().enumerate() {
            let rep_pairs = &ctx.pairs[rep * n_terms..(rep + 1) * n_terms];
            table.matrix.probe_all_into(rep_pairs, eta, &mut ctx.mask);
            let tbl = &mut ctx.tbl;
            tbl.clear_all();
            for bucket in ctx.mask.iter_ones() {
                for &d in &table.buckets[bucket] {
                    tbl.set(d as usize);
                }
            }
            // Fused AND + liveness (one unrolled pass — see
            // [`rambo_bitvec::kernel`]): stop the moment the intersection
            // empties, it is already conclusive.
            let live = if rep == 0 {
                ctx.acc.copy_from(tbl);
                ctx.acc.any()
            } else {
                ctx.acc.and_assign_any(tbl)
            };
            if !live {
                return;
            }
        }
    }

    /// RAMBO+ evaluation: repetition 1 probes the matrix once and gathers an
    /// explicit candidate list; repetition `r > 1` probes only the buckets
    /// holding surviving candidates, memoized per bucket.
    fn query_sparse(&self, n_terms: usize, ctx: &mut QueryContext) {
        let eta = self.params().eta;
        let b = self.buckets() as usize;
        // First repetition: full matrix probe, then gather candidates from
        // the matching buckets (buckets partition the documents, so the
        // concatenation is duplicate-free; one sort restores id order).
        let table0 = &self.tables[0];
        table0
            .matrix
            .probe_all_into(&ctx.pairs[..n_terms], eta, &mut ctx.mask);
        ctx.candidates.clear();
        for bucket in ctx.mask.iter_ones() {
            ctx.candidates.extend_from_slice(&table0.buckets[bucket]);
        }
        ctx.candidates.sort_unstable();

        for (rep, table) in self.tables.iter().enumerate().skip(1) {
            if ctx.candidates.is_empty() {
                return;
            }
            ctx.probes[..b].fill(0);
            let probes = &mut ctx.probes;
            let rep_pairs = &ctx.pairs[rep * n_terms..(rep + 1) * n_terms];
            let matrix = &table.matrix;
            let assign = &table.assign;
            ctx.candidates.retain(|&d| {
                let bucket = assign[d as usize] as usize;
                match probes[bucket] {
                    1 => true,
                    2 => false,
                    _ => {
                        let ok = matrix.probe_bucket(bucket, rep_pairs, eta);
                        probes[bucket] = if ok { 1 } else { 2 };
                        ok
                    }
                }
            });
        }
    }

    /// Large-sequence query (§3.3.1): membership-test each term of the query
    /// sequence and intersect the per-term results, stopping at the first
    /// term whose result empties the intersection ("the first returned FALSE
    /// will be conclusive"). The output is bounded by the rarest term.
    #[must_use]
    pub fn query_sequence_u64(&self, terms: &[u64], mode: QueryMode) -> Vec<DocId> {
        let mut ctx = QueryContext::new();
        self.query_sequence_with(terms, mode, &mut ctx)
    }

    /// [`Rambo::query_sequence_u64`] with caller-owned scratch space.
    #[must_use]
    pub fn query_sequence_with(
        &self,
        terms: &[u64],
        mode: QueryMode,
        ctx: &mut QueryContext,
    ) -> Vec<DocId> {
        let k = self.num_documents();
        if k == 0 || terms.is_empty() {
            return Vec::new();
        }
        let mut acc: Option<Vec<DocId>> = None;
        for &term in terms {
            let hits = self.query_terms_with(&[term], mode, ctx);
            acc = Some(match acc {
                None => hits,
                Some(prev) => intersect_sorted_ids(&prev, &hits),
            });
            if acc.as_ref().is_some_and(Vec::is_empty) {
                return Vec::new(); // first conclusive FALSE
            }
        }
        acc.unwrap_or_default()
    }

    /// θ-fraction sequence query: return documents that (appear to) contain
    /// at least `theta · terms.len()` of the query terms.
    ///
    /// Strict intersection (θ = 1) is brittle on raw-read workloads: a
    /// sequencing error or coverage gap removes a single k-mer from the
    /// indexed set and empties the result. The SBT family answers sequence
    /// queries with a θ threshold for exactly this reason; this method gives
    /// RAMBO the same robustness. Documents are returned in ascending id
    /// order; queries that can no longer reach the threshold abort early.
    ///
    /// ```
    /// use rambo_core::{QueryContext, QueryMode, Rambo, RamboParams};
    ///
    /// let mut index = Rambo::new(RamboParams::flat(8, 3, 1 << 12, 2, 7)).unwrap();
    /// let doc = index.insert_document("run-1", 0..100u64).unwrap();
    ///
    /// // Two of five query terms were never indexed (read errors): the
    /// // strict intersection fails, θ = 0.6 still recovers the document.
    /// let seq = [1u64, 2, 3, 9999, 8888];
    /// let mut ctx = QueryContext::new();
    /// assert!(index.query_sequence_u64(&seq, QueryMode::Full).is_empty());
    /// let hits = index.query_sequence_theta(&seq, 0.6, QueryMode::Full, &mut ctx);
    /// assert_eq!(hits, vec![doc]);
    /// ```
    ///
    /// # Panics
    /// Panics unless `0 < theta ≤ 1`.
    #[must_use]
    pub fn query_sequence_theta(
        &self,
        terms: &[u64],
        theta: f64,
        mode: QueryMode,
        ctx: &mut QueryContext,
    ) -> Vec<DocId> {
        assert!(theta > 0.0 && theta <= 1.0, "theta must be in (0, 1]");
        let k = self.num_documents();
        if k == 0 || terms.is_empty() {
            return Vec::new();
        }
        let needed = ((theta * terms.len() as f64).ceil() as usize).max(1);
        // Counts live in the context (monotonic reuse — see
        // [`QueryContext::ensure`]); only the `k`-prefix is read or written.
        if ctx.counts.len() < k {
            ctx.counts.resize(k, 0);
        }
        ctx.counts[..k].fill(0);
        // Running maximum over all counts: increments only ever raise a
        // single counter, so tracking the max incrementally replaces the
        // former O(K) scan per term.
        let mut max_count = 0usize;
        for (done, &term) in terms.iter().enumerate() {
            let hits = self.query_terms_with(&[term], mode, ctx);
            for d in hits {
                let c = &mut ctx.counts[d as usize];
                *c += 1;
                max_count = max_count.max(*c as usize);
            }
            // Early exit: even if every remaining term hit every document,
            // nobody new can reach the threshold once the deficit is fatal.
            let remaining = terms.len() - done - 1;
            if remaining == 0 {
                break;
            }
            if max_count + remaining < needed {
                return Vec::new();
            }
        }
        ctx.counts[..k]
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c as usize >= needed)
            .map(|(d, _)| d as DocId)
            .collect()
    }

    /// Convenience: resolve query results to document names.
    #[must_use]
    pub fn resolve_names(&self, ids: &[DocId]) -> Vec<&str> {
        ids.iter().map(|&d| self.document_name(d)).collect()
    }
}

/// Salts decorrelating the two 64-bit halves of [`canonical_query_key`].
const QUERY_KEY_SALT_LO: u64 = 0x9E37_79B9_7F4A_7C15;
const QUERY_KEY_SALT_HI: u64 = 0xC2B2_AE3D_27D4_EB4F;

/// A 128-bit key identifying a query's term **set**, independent of term
/// order and multiplicity: `[b, a, a]` and `[a, b]` produce the same key,
/// mirroring Algorithm 2's semantics (probing a term twice ANDs the same
/// mask twice — idempotent), so any serving-layer result cache keyed by
/// this value returns bit-identical answers for every phrasing of the same
/// set.
///
/// The combine is a commutative wrapping sum of two independently salted
/// [`rambo_hash::mix64`] images per distinct term, folded with the distinct
/// count — order-insensitive by construction, no sort needed for the
/// already-strictly-sorted batches the ingestion paths produce. Unsorted
/// inputs pay one sort+dedupe of a scratch copy.
///
/// ```
/// use rambo_core::canonical_query_key;
///
/// assert_eq!(
///     canonical_query_key(&[3, 1, 2, 2]),
///     canonical_query_key(&[1, 2, 3]),
/// );
/// assert_ne!(canonical_query_key(&[1, 2]), canonical_query_key(&[1, 2, 3]));
/// ```
#[must_use]
pub fn canonical_query_key(terms: &[u64]) -> u128 {
    use rambo_hash::mix64;
    let fold = |unique: &[u64]| {
        let mut lo = 0u64;
        let mut hi = 0u64;
        for &t in unique {
            lo = lo.wrapping_add(mix64(t ^ QUERY_KEY_SALT_LO));
            hi = hi.wrapping_add(mix64(t.rotate_left(32) ^ QUERY_KEY_SALT_HI));
        }
        // Fold the distinct count into both halves so `{}`-padding or
        // truncation collisions cannot survive the final mix.
        let n = unique.len() as u64;
        (u128::from(mix64(lo ^ n)) << 64) | u128::from(mix64(hi ^ n.rotate_left(17)))
    };
    if terms.windows(2).all(|w| w[0] < w[1]) {
        fold(terms)
    } else {
        let mut sorted = terms.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        fold(&sorted)
    }
}

/// Merge-intersection of two ascending id lists.
fn intersect_sorted_ids(a: &[DocId], b: &[DocId]) -> Vec<DocId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RamboParams;

    /// A small index over synthetic documents with known term sets.
    fn build(k: usize, terms_per_doc: usize, seed: u64) -> (Rambo, Vec<Vec<u64>>) {
        let params = RamboParams::flat(8, 3, 1 << 14, 2, seed);
        let mut r = Rambo::new(params).unwrap();
        let mut contents = Vec::new();
        for d in 0..k {
            // Disjoint term ranges per doc, plus one shared term 0xFFFF.
            let base = (d as u64) << 32;
            let mut ts: Vec<u64> = (0..terms_per_doc as u64).map(|t| base | t).collect();
            ts.push(0xFFFF);
            r.insert_document(&format!("doc{d}"), ts.iter().copied())
                .unwrap();
            contents.push(ts);
        }
        (r, contents)
    }

    #[test]
    fn zero_false_negatives_single_term() {
        let (r, contents) = build(30, 50, 1);
        for (d, ts) in contents.iter().enumerate() {
            for &t in ts.iter().take(5) {
                let hits = r.query_u64(t);
                assert!(
                    hits.contains(&(d as DocId)),
                    "doc {d} missing for its own term {t:#x}"
                );
            }
        }
    }

    #[test]
    fn byte_and_u64_paths_consistent() {
        let params = RamboParams::flat(8, 3, 1 << 12, 2, 5);
        let mut r = Rambo::new(params).unwrap();
        let d = r.add_document("bytes-doc").unwrap();
        r.insert_term_bytes(d, b"GATTACA").unwrap();
        assert!(r.query_bytes(b"GATTACA").contains(&d));
        assert!(r.query_bytes(b"GATTACC").is_empty());
    }

    #[test]
    fn shared_term_returns_all_documents() {
        let (r, _) = build(20, 30, 2);
        let hits = r.query_u64(0xFFFF);
        assert_eq!(hits.len(), 20, "shared term must hit every doc");
        // Ascending order.
        assert!(hits.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn absent_term_mostly_returns_empty() {
        let (r, _) = build(30, 50, 3);
        let mut nonempty = 0;
        for probe in 0..200u64 {
            // Terms outside every doc's range.
            if !r.query_u64(0xDEAD_0000_0000 + probe).is_empty() {
                nonempty += 1;
            }
        }
        assert!(
            nonempty < 20,
            "too many false-positive result sets: {nonempty}"
        );
    }

    /// With independent per-repetition Bloom families, a Bloom failure in
    /// one repetition is uncorrelated with the others, so false positives
    /// need all R tables to fail *independently*. Regression test for the
    /// shared-seed bug where a document's own bits made its buckets pass in
    /// every repetition at once.
    #[test]
    fn repetitions_fail_independently() {
        let (r, _) = build(40, 300, 4); // heavy fill: single-table FPs common
        let mut single_fp = 0usize;
        let mut all_rep_fp = 0usize;
        for probe in 0..400u64 {
            let t = 0xCCCC_0000_0000 + probe;
            // Count docs passing in repetition 0 only vs in the full query.
            for d in 0..40u32 {
                let b0 = r.bucket_of(0, d) as usize;
                if r.bfu_contains_u64(0, b0, t) {
                    single_fp += 1;
                }
            }
            all_rep_fp += r.query_u64(t).len();
        }
        assert!(single_fp > 0, "test needs observable single-table FPs");
        // The full-query FP count must be dramatically below the
        // single-table count (here: orders of magnitude).
        assert!(
            all_rep_fp * 10 < single_fp,
            "repetitions look correlated: single {single_fp}, full {all_rep_fp}"
        );
    }

    #[test]
    fn sparse_equals_full() {
        let (r, contents) = build(40, 40, 4);
        let mut ctx_f = QueryContext::new();
        let mut ctx_s = QueryContext::new();
        // Present terms, the shared term, and absent terms.
        let mut probes: Vec<u64> = contents.iter().flat_map(|ts| ts[..3].to_vec()).collect();
        probes.push(0xFFFF);
        probes.extend((0..50).map(|i| 0xABCD_0000_0000u64 + i));
        for t in probes {
            let full = r.query_terms_with(&[t], QueryMode::Full, &mut ctx_f);
            let sparse = r.query_terms_with(&[t], QueryMode::Sparse, &mut ctx_s);
            assert_eq!(full, sparse, "modes disagree on term {t:#x}");
        }
    }

    #[test]
    fn multi_term_narrows_to_owner() {
        let (r, contents) = build(25, 40, 5);
        // Terms 0..4 of doc 7 identify it uniquely (plus possible FPs, but
        // never missing it).
        let hits = r.query_terms_u64(&contents[7][..4], QueryMode::Full);
        assert!(hits.contains(&7));
        // All-terms semantics must be at least as selective as any single term.
        let single = r.query_u64(contents[7][0]);
        assert!(hits.iter().all(|d| single.contains(d)));
    }

    #[test]
    fn sequence_query_intersects_terms() {
        let (r, contents) = build(25, 40, 6);
        let hits = r.query_sequence_u64(&contents[3][..6], QueryMode::Full);
        assert!(hits.contains(&3));
        // A sequence mixing two docs' exclusive terms matches nobody.
        let mixed = [contents[3][0], contents[4][0]];
        let hits = r.query_sequence_u64(&mixed, QueryMode::Full);
        assert!(!hits.contains(&3) || !hits.contains(&4));
    }

    #[test]
    fn all_terms_result_subset_of_sequence_result() {
        // Per-BFU all-terms (Algorithm 2) is at least as selective as
        // term-at-a-time intersection (§3.3.1); both retain the true owner.
        let (r, contents) = build(30, 40, 7);
        for d in [0usize, 9, 21] {
            let q = &contents[d][..5];
            let joint = r.query_terms_u64(q, QueryMode::Full);
            let seq = r.query_sequence_u64(q, QueryMode::Full);
            assert!(joint.contains(&(d as DocId)));
            assert!(seq.contains(&(d as DocId)));
            assert!(
                joint.iter().all(|x| seq.contains(x)),
                "all-terms result must be ⊆ sequence result"
            );
        }
    }

    #[test]
    fn sequence_query_modes_agree() {
        let (r, contents) = build(20, 30, 11);
        for d in [2usize, 13] {
            let q = &contents[d][..4];
            assert_eq!(
                r.query_sequence_u64(q, QueryMode::Full),
                r.query_sequence_u64(q, QueryMode::Sparse)
            );
        }
    }

    #[test]
    fn empty_inputs() {
        let (r, _) = build(5, 10, 8);
        assert!(r.query_terms_u64(&[], QueryMode::Full).is_empty());
        assert!(r.query_sequence_u64(&[], QueryMode::Full).is_empty());
        let empty = Rambo::new(RamboParams::flat(4, 2, 1024, 2, 0)).unwrap();
        assert!(empty.query_u64(42).is_empty());
    }

    #[test]
    fn context_reuse_is_sound() {
        let (r, contents) = build(20, 30, 9);
        let mut ctx = QueryContext::new();
        // Interleave queries with very different result sizes.
        let a1 = r.query_terms_with(&[0xFFFF], QueryMode::Full, &mut ctx);
        let b1 = r.query_terms_with(&[contents[0][0]], QueryMode::Sparse, &mut ctx);
        let a2 = r.query_terms_with(&[0xFFFF], QueryMode::Full, &mut ctx);
        let b2 = r.query_terms_with(&[contents[0][0]], QueryMode::Sparse, &mut ctx);
        assert_eq!(a1, a2);
        assert_eq!(b1, b2);
    }

    #[test]
    fn resolve_names_maps_ids() {
        let (r, _) = build(3, 5, 10);
        let hits = r.query_u64(0xFFFF);
        let names = r.resolve_names(&hits);
        assert_eq!(names, vec!["doc0", "doc1", "doc2"]);
    }

    #[test]
    fn theta_query_tolerates_missing_terms() {
        let (r, contents) = build(20, 40, 12);
        let mut ctx = QueryContext::new();
        // Query doc 5's terms plus two absent terms: strict intersection
        // fails, θ = 0.7 still finds the owner.
        let mut q: Vec<u64> = contents[5][..8].to_vec();
        q.push(0xDEAD_0000_0001);
        q.push(0xDEAD_0000_0002);
        let strict = r.query_sequence_u64(&q, QueryMode::Full);
        assert!(strict.is_empty(), "absent terms must break strict AND");
        let theta = r.query_sequence_theta(&q, 0.7, QueryMode::Full, &mut ctx);
        assert!(theta.contains(&5), "theta query must recover the owner");
        // θ = 1 equals the strict conjunction semantics on per-term results.
        let theta1 = r.query_sequence_theta(&q, 1.0, QueryMode::Full, &mut ctx);
        assert_eq!(theta1, strict);
    }

    #[test]
    fn theta_query_early_exit_on_hopeless_queries() {
        let (r, _) = build(10, 20, 13);
        let mut ctx = QueryContext::new();
        let absent: Vec<u64> = (0..10).map(|i| 0xBBBB_0000_0000u64 + i).collect();
        let hits = r.query_sequence_theta(&absent, 0.9, QueryMode::Sparse, &mut ctx);
        assert!(hits.is_empty());
    }

    #[test]
    fn intersect_sorted_ids_basic() {
        assert_eq!(intersect_sorted_ids(&[1, 3, 5], &[3, 5, 7]), vec![3, 5]);
        assert_eq!(intersect_sorted_ids(&[], &[1]), Vec::<DocId>::new());
    }

    #[test]
    fn canonical_query_key_is_order_and_multiplicity_insensitive() {
        let sorted = [1u64, 5, 9, 42];
        let shuffled = [42u64, 9, 1, 5];
        let duplicated = [5u64, 1, 42, 9, 5, 1, 1];
        let k = canonical_query_key(&sorted);
        assert_eq!(k, canonical_query_key(&shuffled));
        assert_eq!(k, canonical_query_key(&duplicated));
        // Distinct sets get distinct keys (w.h.p.; these literals do).
        assert_ne!(k, canonical_query_key(&[1u64, 5, 9]));
        assert_ne!(k, canonical_query_key(&[1u64, 5, 9, 43]));
        assert_ne!(canonical_query_key(&[]), canonical_query_key(&[0]));
        // Subset-sum padding: {a} vs {a, a} must collapse, {a} vs {a, 0}
        // must not (0 hashes to a non-zero image).
        assert_eq!(canonical_query_key(&[7, 7]), canonical_query_key(&[7]));
        assert_ne!(canonical_query_key(&[7, 0]), canonical_query_key(&[7]));
    }
}
