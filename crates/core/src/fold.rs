//! Fold-over (§5.3, Figure 3): halve `B` by OR-ing the upper half of each
//! repetition's BFUs onto the lower half.
//!
//! Because a BFU is a Bloom filter of the *union* of its documents, OR-ing
//! BFU `b` with BFU `b + B/2` yields exactly the BFU of the merged bucket —
//! i.e. the index one would have built with `B/2` partitions and partition
//! hash `φᵢ mod B/2`. The paper uses this for one-time post-construction
//! size/accuracy tuning: "a one-time processing allows us to create several
//! versions of RAMBO with varying sizes and FP rates" (Table 4, Figure 4).
//! Folding never introduces false negatives; it raises the false-positive
//! rate super-linearly as memory shrinks by 2×, 4×, 8×…

use crate::error::RamboError;
use crate::index::Rambo;

/// Storage choice for one tier of a fold-over catalog
/// ([`Rambo::fold_catalog_bytes_with`]).
///
/// `Dense` tiers serialize row-major words (re-openable zero-copy or paged);
/// `Rrr` tiers serialize RRR-compressed rows — the Table 3 trade the paper
/// attributes to HowDeSBT/SSBT, applied here to *cold* tiers only. RRR wins
/// when rows are sparse, which is exactly the unfolded (large-`B`) end of
/// the catalog: folding ORs columns together and raises the fill fraction,
/// so the hot folded tiers stay dense where the kernel fast path runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TierCompression {
    /// Row-major dense words (the v2 default; zero-copy / paged openable).
    Dense,
    /// RRR-compressed rows; probes decode touched rows block-wise.
    Rrr,
}

impl Rambo {
    /// Fold once: `B → B/2`, total size halves, FPR grows.
    ///
    /// # Errors
    /// [`RamboError::FoldUnavailable`] when the current bucket count is odd
    /// or would drop below 2, and [`RamboError::Bloom`] if the BFU merge
    /// detects mismatched parameters (impossible for indexes built by this
    /// crate, but kept as a guard for hand-assembled ones).
    pub fn fold_once(&mut self) -> Result<(), RamboError> {
        let b = self.current_buckets;
        if !b.is_multiple_of(2) {
            return Err(RamboError::FoldUnavailable(format!(
                "bucket count {b} is odd"
            )));
        }
        if b < 4 {
            return Err(RamboError::FoldUnavailable(format!(
                "folding below 2 buckets (current {b}) would collapse the partition"
            )));
        }
        let half = (b / 2) as usize;
        for table in &mut self.tables {
            // OR the upper-half columns onto the lower half.
            table.matrix.fold_once()?;
            // Merge bucket membership: new bucket = old mod B/2.
            for i in 0..half {
                let moved = std::mem::take(&mut table.buckets[half + i]);
                table.buckets[i].extend(moved);
                table.buckets[i].sort_unstable();
            }
            table.buckets.truncate(half);
            for a in &mut table.assign {
                if *a >= half as u32 {
                    *a -= half as u32;
                }
            }
        }
        self.current_buckets = b / 2;
        self.fold_factor += 1;
        Ok(())
    }

    /// Fold `n` times.
    ///
    /// # Errors
    /// Stops at the first unavailable fold (state stays consistent: all
    /// completed folds are applied).
    pub fn fold_times(&mut self, n: u32) -> Result<(), RamboError> {
        for _ in 0..n {
            self.fold_once()?;
        }
        Ok(())
    }

    /// Clone-and-fold: the Table 4 workflow of deriving several index sizes
    /// from one build.
    ///
    /// # Errors
    /// Same as [`Rambo::fold_times`].
    pub fn folded(&self, n: u32) -> Result<Self, RamboError> {
        let mut copy = self.clone();
        copy.fold_times(n)?;
        Ok(copy)
    }

    /// Fold down to exactly `target_buckets`. The target must divide the
    /// current bucket count by a power of two (each fold halves `B`, so
    /// those are the only reachable geometries); `target_buckets ==
    /// buckets()` is a no-op.
    ///
    /// # Errors
    /// [`RamboError::FoldUnavailable`] when the target is zero, larger than
    /// the current bucket count, not a power-of-two divisor of it, or when
    /// an intermediate fold is unavailable (odd or sub-2 bucket count); all
    /// folds completed before the failure stay applied, exactly like
    /// [`Rambo::fold_times`].
    pub fn fold_to(&mut self, target_buckets: u64) -> Result<(), RamboError> {
        let b = self.current_buckets;
        if target_buckets == 0 || target_buckets > b {
            return Err(RamboError::FoldUnavailable(format!(
                "cannot fold {b} buckets to {target_buckets}"
            )));
        }
        if !b.is_multiple_of(target_buckets) || !(b / target_buckets).is_power_of_two() {
            return Err(RamboError::FoldUnavailable(format!(
                "target {target_buckets} is not a power-of-two divisor of {b}"
            )));
        }
        self.fold_times((b / target_buckets).trailing_zeros())
    }

    /// Serialize the §5.3 / Table 4 fold-over *catalog*: one buffer holding
    /// this index folded to each geometry in `tier_buckets`, concatenated in
    /// order. Every tier is re-openable zero-copy with
    /// [`Rambo::open_view_at`] — this is the on-disk layout behind
    /// "a one-time processing allows us to create several versions of RAMBO
    /// with varying sizes and FP rates" that a serving catalog walks.
    ///
    /// `tier_buckets` must be strictly decreasing, with each entry a
    /// power-of-two divisor of its predecessor (and the first a
    /// power-of-two divisor of the current bucket count, typically equal to
    /// it). The folds are applied progressively — one clone total, not one
    /// per tier.
    ///
    /// # Errors
    /// [`RamboError::FoldUnavailable`] on an empty or non-decreasing tier
    /// list or an unreachable geometry, plus everything
    /// [`Rambo::to_bytes`] can raise (node-local shards).
    pub fn fold_catalog_bytes(&self, tier_buckets: &[u64]) -> Result<Vec<u8>, RamboError> {
        let tiers: Vec<(u64, TierCompression)> = tier_buckets
            .iter()
            .map(|&b| (b, TierCompression::Dense))
            .collect();
        self.fold_catalog_bytes_with(&tiers)
    }

    /// [`Rambo::fold_catalog_bytes`] with a per-tier compression flag: each
    /// `(buckets, compression)` entry folds to `buckets` and serializes
    /// either dense (`RBFM` matrix records) or RRR-compressed (`RBFR`
    /// records). Every decode path — [`Rambo::from_bytes`],
    /// [`Rambo::open_view_at`], [`Rambo::open_paged_at`] — dispatches on
    /// the record magic, so mixed catalogs open transparently; compressed
    /// tiers simply have no zero-copy/paged form and decode into owned RRR
    /// storage.
    ///
    /// # Errors
    /// Same as [`Rambo::fold_catalog_bytes`].
    pub fn fold_catalog_bytes_with(
        &self,
        tiers: &[(u64, TierCompression)],
    ) -> Result<Vec<u8>, RamboError> {
        if tiers.is_empty() {
            return Err(RamboError::FoldUnavailable(
                "catalog needs at least one tier".into(),
            ));
        }
        if tiers.windows(2).any(|w| w[1].0 >= w[0].0) {
            let buckets: Vec<u64> = tiers.iter().map(|t| t.0).collect();
            return Err(RamboError::FoldUnavailable(format!(
                "catalog tiers must be strictly decreasing, got {buckets:?}"
            )));
        }
        let mut out = Vec::new();
        let mut cur = self.clone();
        for &(target, compression) in tiers {
            cur.fold_to(target)?;
            match compression {
                TierCompression::Dense => out.extend(cur.to_bytes()?),
                TierCompression::Rrr => {
                    // Compress a clone: `cur` keeps dense storage so later
                    // (smaller) tiers fold from words, not decodes.
                    let mut compressed = cur.clone();
                    compressed.compress_to_rrr();
                    out.extend(compressed.to_bytes()?);
                }
            }
            // Zero-copy invariant: every encoded index ends on its 8-aligned
            // word payload (RRR records are whole words too), so each tier
            // starts at a multiple of 8 and the per-tier internal padding
            // stays valid inside the catalog.
            debug_assert!(out.len().is_multiple_of(8));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RamboParams;
    use crate::query::QueryMode;
    use crate::DocId;

    fn build(buckets: u64, k: usize, seed: u64) -> (Rambo, Vec<Vec<u64>>) {
        let mut r = Rambo::new(RamboParams::flat(buckets, 3, 1 << 13, 2, seed)).unwrap();
        let mut contents = Vec::new();
        for d in 0..k {
            let base = (d as u64) << 20;
            let ts: Vec<u64> = (0..40u64).map(|t| base | t).collect();
            r.insert_document(&format!("doc{d}"), ts.iter().copied())
                .unwrap();
            contents.push(ts);
        }
        (r, contents)
    }

    #[test]
    fn fold_halves_buckets_and_size() {
        // B must stay above word granularity (64 columns) for the matrix
        // rows to actually narrow.
        let (mut r, _) = build(256, 60, 1);
        let size0 = r.size_bytes();
        r.fold_once().unwrap();
        assert_eq!(r.buckets(), 128);
        assert_eq!(r.fold_factor(), 1);
        assert!(r.size_bytes() < size0, "folding must shrink the index");
        r.fold_once().unwrap();
        assert_eq!(r.buckets(), 64);
    }

    #[test]
    fn fold_preserves_zero_false_negatives() {
        let (mut r, contents) = build(16, 60, 2);
        r.fold_times(2).unwrap();
        for (d, ts) in contents.iter().enumerate() {
            for &t in ts.iter().take(3) {
                assert!(
                    r.query_u64(t).contains(&(d as DocId)),
                    "doc {d} lost after folding"
                );
            }
        }
    }

    #[test]
    fn folded_equals_building_with_half_b() {
        // The semantic claim behind fold-over: folding B=16 once yields the
        // same BFU bit patterns as... NOT in general the same as building at
        // B=8 (the partition hash ranges differ), but it must equal merging
        // bucket pairs (b, b+8). Verify bucket contents and filter bits.
        let (mut r, _) = build(16, 80, 3);
        let before = r.clone();
        r.fold_once().unwrap();
        for rep in 0..3 {
            for b in 0..8usize {
                // Filter = OR of the two source filters.
                let mut expect = before.bfu_bits(rep, b);
                expect.or_assign(&before.bfu_bits(rep, b + 8));
                assert_eq!(r.bfu_bits(rep, b), expect);
                // Bucket docs = union of the two source buckets.
                let mut docs: Vec<DocId> = before
                    .bucket_documents(rep, b)
                    .iter()
                    .chain(before.bucket_documents(rep, b + 8))
                    .copied()
                    .collect();
                docs.sort_unstable();
                assert_eq!(r.bucket_documents(rep, b), docs.as_slice());
            }
        }
    }

    #[test]
    fn fold_keeps_assignment_consistent() {
        let (mut r, _) = build(16, 50, 4);
        r.fold_once().unwrap();
        for rep in 0..3 {
            for b in 0..8usize {
                for &d in r.bucket_documents(rep, b) {
                    assert_eq!(r.bucket_of(rep, d), b as u32);
                }
            }
        }
    }

    #[test]
    fn documents_added_after_fold_are_queryable() {
        let (mut r, _) = build(16, 30, 5);
        r.fold_once().unwrap();
        let d = r.insert_document("late-arrival", [0xAAAA_BBBBu64]).unwrap();
        assert!(r.query_u64(0xAAAA_BBBB).contains(&d));
        // And its assignment respects the folded range.
        for rep in 0..3 {
            assert!(u64::from(r.bucket_of(rep, d)) < r.buckets());
        }
    }

    #[test]
    fn fold_increases_fpr() {
        let (r, _) = build(32, 200, 6);
        let folded = r.folded(3).unwrap();
        // Estimated per-BFU FPR grows as filters merge.
        assert!(folded.estimated_bfu_fpr() > r.estimated_bfu_fpr());
        // Measured: count false-positive docs on absent terms.
        let mut fp_base = 0usize;
        let mut fp_fold = 0usize;
        for t in 0..300u64 {
            let probe = 0xFFFF_0000_0000u64 + t;
            fp_base += r.query_u64(probe).len();
            fp_fold += folded.query_u64(probe).len();
        }
        assert!(
            fp_fold >= fp_base,
            "folding should not reduce false positives (base {fp_base}, folded {fp_fold})"
        );
    }

    #[test]
    fn fold_unavailable_cases() {
        let (mut r, _) = build(6, 10, 7); // 6 → 3 (odd) → error on second fold
        r.fold_once().unwrap();
        assert!(matches!(r.fold_once(), Err(RamboError::FoldUnavailable(_))));
        let (mut tiny, _) = build(2, 5, 8);
        assert!(matches!(
            tiny.fold_once(),
            Err(RamboError::FoldUnavailable(_))
        ));
    }

    #[test]
    fn fold_to_composes_fold_once() {
        let (r, _) = build(64, 40, 10);
        let mut direct = r.clone();
        direct.fold_to(8).unwrap();
        assert_eq!(direct.buckets(), 8);
        assert_eq!(direct.fold_factor(), 3);
        assert_eq!(direct, r.folded(3).unwrap());
        // No-op target.
        let mut same = r.clone();
        same.fold_to(64).unwrap();
        assert_eq!(same, r);
    }

    #[test]
    fn fold_to_rejects_unreachable_targets() {
        let (r, _) = build(16, 10, 11);
        for bad in [0u64, 3, 5, 6, 32] {
            let mut c = r.clone();
            assert!(
                matches!(c.fold_to(bad), Err(RamboError::FoldUnavailable(_))),
                "target {bad} must be rejected"
            );
            assert_eq!(c, r, "failed fold_to({bad}) must not mutate");
        }
    }

    #[test]
    fn fold_catalog_bytes_concatenates_reopenable_tiers() {
        let (r, contents) = build(32, 40, 12);
        let bytes = r.fold_catalog_bytes(&[32, 16, 8]).unwrap();
        let arc: std::sync::Arc<[u8]> = bytes.into();
        if !(arc.as_ptr() as usize).is_multiple_of(8) {
            return; // loader correctly errors on misaligned Arc payloads
        }
        let mut offset = 0;
        let mut tiers = Vec::new();
        while offset < arc.len() {
            let (tier, used) = Rambo::open_view_at(&arc, offset).unwrap();
            offset += used;
            tiers.push(tier);
        }
        assert_eq!(offset, arc.len());
        assert_eq!(tiers.len(), 3);
        assert_eq!(tiers[0], r);
        assert_eq!(tiers[1], r.folded(1).unwrap());
        assert_eq!(tiers[2], r.folded(2).unwrap());
        // Same query answers, zero false negatives on every tier.
        for tier in &tiers {
            assert!(tier.payload_borrows(&arc));
            for &t in contents[3].iter().take(3) {
                assert!(tier.query_u64(t).contains(&3));
            }
        }
    }

    #[test]
    fn compressed_catalog_tiers_answer_identically() {
        let (r, contents) = build(128, 50, 14);
        let dense = r.fold_catalog_bytes(&[128, 32]).unwrap();
        let mixed = r
            .fold_catalog_bytes_with(&[(128, TierCompression::Rrr), (32, TierCompression::Dense)])
            .unwrap();
        assert!(
            mixed.len() < dense.len(),
            "RRR tier 0 must shrink the catalog ({} vs {})",
            mixed.len(),
            dense.len()
        );
        // Both tiers reopen through open_view_at (which dispatches per
        // record: RBFR decodes owned, RBFM borrows) and answer like the
        // all-dense catalog.
        let arc: std::sync::Arc<[u8]> = mixed.into();
        let mut tiers = Vec::new();
        let mut offset = 0;
        while offset < arc.len() {
            let (tier, used) = Rambo::open_view_at(&arc, offset).unwrap();
            offset += used;
            tiers.push(tier);
        }
        assert_eq!(tiers.len(), 2);
        assert!(tiers[0].is_compressed(), "tier 0 must decode as RRR");
        assert!(!tiers[1].is_compressed(), "tier 1 must stay dense");
        assert_eq!(tiers[0], r, "compressed tier is logically the source");
        assert_eq!(tiers[1], r.folded(2).unwrap());
        for (d, ts) in contents.iter().enumerate().take(6) {
            for &t in ts.iter().take(3) {
                for tier in &tiers {
                    assert!(tier.query_u64(t).contains(&(d as crate::DocId)));
                }
            }
        }
    }

    #[test]
    fn compress_to_rrr_roundtrips_and_mutates() {
        let (r, _) = build(256, 40, 15);
        let mut c = r.clone();
        c.compress_to_rrr();
        assert!(c.is_compressed());
        assert_eq!(c, r, "compression is logically lossless");
        assert!(c.size_bytes() < r.size_bytes());
        // Mutation materializes transparently.
        let d = c.insert_document("late", [0x5EEDu64]).unwrap();
        assert!(!c.is_compressed());
        assert!(c.query_u64(0x5EED).contains(&d));
    }

    #[test]
    fn fold_catalog_rejects_bad_tier_lists() {
        let (r, _) = build(16, 10, 13);
        assert!(matches!(
            r.fold_catalog_bytes(&[]),
            Err(RamboError::FoldUnavailable(_))
        ));
        assert!(matches!(
            r.fold_catalog_bytes(&[16, 16]),
            Err(RamboError::FoldUnavailable(_))
        ));
        assert!(matches!(
            r.fold_catalog_bytes(&[8, 16]),
            Err(RamboError::FoldUnavailable(_))
        ));
        assert!(matches!(
            r.fold_catalog_bytes(&[16, 6]),
            Err(RamboError::FoldUnavailable(_))
        ));
    }

    #[test]
    fn sparse_mode_agrees_after_folding() {
        let (mut r, contents) = build(16, 60, 9);
        r.fold_once().unwrap();
        for &t in contents[10].iter().take(5) {
            assert_eq!(
                r.query_terms_u64(&[t], QueryMode::Full),
                r.query_terms_u64(&[t], QueryMode::Sparse)
            );
        }
    }
}
