//! Fold-over (§5.3, Figure 3): halve `B` by OR-ing the upper half of each
//! repetition's BFUs onto the lower half.
//!
//! Because a BFU is a Bloom filter of the *union* of its documents, OR-ing
//! BFU `b` with BFU `b + B/2` yields exactly the BFU of the merged bucket —
//! i.e. the index one would have built with `B/2` partitions and partition
//! hash `φᵢ mod B/2`. The paper uses this for one-time post-construction
//! size/accuracy tuning: "a one-time processing allows us to create several
//! versions of RAMBO with varying sizes and FP rates" (Table 4, Figure 4).
//! Folding never introduces false negatives; it raises the false-positive
//! rate super-linearly as memory shrinks by 2×, 4×, 8×…

use crate::error::RamboError;
use crate::index::Rambo;

impl Rambo {
    /// Fold once: `B → B/2`, total size halves, FPR grows.
    ///
    /// # Errors
    /// [`RamboError::FoldUnavailable`] when the current bucket count is odd
    /// or would drop below 2, and [`RamboError::Bloom`] if the BFU merge
    /// detects mismatched parameters (impossible for indexes built by this
    /// crate, but kept as a guard for hand-assembled ones).
    pub fn fold_once(&mut self) -> Result<(), RamboError> {
        let b = self.current_buckets;
        if !b.is_multiple_of(2) {
            return Err(RamboError::FoldUnavailable(format!(
                "bucket count {b} is odd"
            )));
        }
        if b < 4 {
            return Err(RamboError::FoldUnavailable(format!(
                "folding below 2 buckets (current {b}) would collapse the partition"
            )));
        }
        let half = (b / 2) as usize;
        for table in &mut self.tables {
            // OR the upper-half columns onto the lower half.
            table.matrix.fold_once()?;
            // Merge bucket membership: new bucket = old mod B/2.
            for i in 0..half {
                let moved = std::mem::take(&mut table.buckets[half + i]);
                table.buckets[i].extend(moved);
                table.buckets[i].sort_unstable();
            }
            table.buckets.truncate(half);
            for a in &mut table.assign {
                if *a >= half as u32 {
                    *a -= half as u32;
                }
            }
        }
        self.current_buckets = b / 2;
        self.fold_factor += 1;
        Ok(())
    }

    /// Fold `n` times.
    ///
    /// # Errors
    /// Stops at the first unavailable fold (state stays consistent: all
    /// completed folds are applied).
    pub fn fold_times(&mut self, n: u32) -> Result<(), RamboError> {
        for _ in 0..n {
            self.fold_once()?;
        }
        Ok(())
    }

    /// Clone-and-fold: the Table 4 workflow of deriving several index sizes
    /// from one build.
    ///
    /// # Errors
    /// Same as [`Rambo::fold_times`].
    pub fn folded(&self, n: u32) -> Result<Self, RamboError> {
        let mut copy = self.clone();
        copy.fold_times(n)?;
        Ok(copy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::RamboParams;
    use crate::query::QueryMode;
    use crate::DocId;

    fn build(buckets: u64, k: usize, seed: u64) -> (Rambo, Vec<Vec<u64>>) {
        let mut r = Rambo::new(RamboParams::flat(buckets, 3, 1 << 13, 2, seed)).unwrap();
        let mut contents = Vec::new();
        for d in 0..k {
            let base = (d as u64) << 20;
            let ts: Vec<u64> = (0..40u64).map(|t| base | t).collect();
            r.insert_document(&format!("doc{d}"), ts.iter().copied())
                .unwrap();
            contents.push(ts);
        }
        (r, contents)
    }

    #[test]
    fn fold_halves_buckets_and_size() {
        // B must stay above word granularity (64 columns) for the matrix
        // rows to actually narrow.
        let (mut r, _) = build(256, 60, 1);
        let size0 = r.size_bytes();
        r.fold_once().unwrap();
        assert_eq!(r.buckets(), 128);
        assert_eq!(r.fold_factor(), 1);
        assert!(r.size_bytes() < size0, "folding must shrink the index");
        r.fold_once().unwrap();
        assert_eq!(r.buckets(), 64);
    }

    #[test]
    fn fold_preserves_zero_false_negatives() {
        let (mut r, contents) = build(16, 60, 2);
        r.fold_times(2).unwrap();
        for (d, ts) in contents.iter().enumerate() {
            for &t in ts.iter().take(3) {
                assert!(
                    r.query_u64(t).contains(&(d as DocId)),
                    "doc {d} lost after folding"
                );
            }
        }
    }

    #[test]
    fn folded_equals_building_with_half_b() {
        // The semantic claim behind fold-over: folding B=16 once yields the
        // same BFU bit patterns as... NOT in general the same as building at
        // B=8 (the partition hash ranges differ), but it must equal merging
        // bucket pairs (b, b+8). Verify bucket contents and filter bits.
        let (mut r, _) = build(16, 80, 3);
        let before = r.clone();
        r.fold_once().unwrap();
        for rep in 0..3 {
            for b in 0..8usize {
                // Filter = OR of the two source filters.
                let mut expect = before.bfu_bits(rep, b);
                expect.or_assign(&before.bfu_bits(rep, b + 8));
                assert_eq!(r.bfu_bits(rep, b), expect);
                // Bucket docs = union of the two source buckets.
                let mut docs: Vec<DocId> = before
                    .bucket_documents(rep, b)
                    .iter()
                    .chain(before.bucket_documents(rep, b + 8))
                    .copied()
                    .collect();
                docs.sort_unstable();
                assert_eq!(r.bucket_documents(rep, b), docs.as_slice());
            }
        }
    }

    #[test]
    fn fold_keeps_assignment_consistent() {
        let (mut r, _) = build(16, 50, 4);
        r.fold_once().unwrap();
        for rep in 0..3 {
            for b in 0..8usize {
                for &d in r.bucket_documents(rep, b) {
                    assert_eq!(r.bucket_of(rep, d), b as u32);
                }
            }
        }
    }

    #[test]
    fn documents_added_after_fold_are_queryable() {
        let (mut r, _) = build(16, 30, 5);
        r.fold_once().unwrap();
        let d = r.insert_document("late-arrival", [0xAAAA_BBBBu64]).unwrap();
        assert!(r.query_u64(0xAAAA_BBBB).contains(&d));
        // And its assignment respects the folded range.
        for rep in 0..3 {
            assert!(u64::from(r.bucket_of(rep, d)) < r.buckets());
        }
    }

    #[test]
    fn fold_increases_fpr() {
        let (r, _) = build(32, 200, 6);
        let folded = r.folded(3).unwrap();
        // Estimated per-BFU FPR grows as filters merge.
        assert!(folded.estimated_bfu_fpr() > r.estimated_bfu_fpr());
        // Measured: count false-positive docs on absent terms.
        let mut fp_base = 0usize;
        let mut fp_fold = 0usize;
        for t in 0..300u64 {
            let probe = 0xFFFF_0000_0000u64 + t;
            fp_base += r.query_u64(probe).len();
            fp_fold += folded.query_u64(probe).len();
        }
        assert!(
            fp_fold >= fp_base,
            "folding should not reduce false positives (base {fp_base}, folded {fp_fold})"
        );
    }

    #[test]
    fn fold_unavailable_cases() {
        let (mut r, _) = build(6, 10, 7); // 6 → 3 (odd) → error on second fold
        r.fold_once().unwrap();
        assert!(matches!(r.fold_once(), Err(RamboError::FoldUnavailable(_))));
        let (mut tiny, _) = build(2, 5, 8);
        assert!(matches!(
            tiny.fold_once(),
            Err(RamboError::FoldUnavailable(_))
        ));
    }

    #[test]
    fn sparse_mode_agrees_after_folding() {
        let (mut r, contents) = build(16, 60, 9);
        r.fold_once().unwrap();
        for &t in contents[10].iter().take(5) {
            assert_eq!(
                r.query_terms_u64(&[t], QueryMode::Full),
                r.query_terms_u64(&[t], QueryMode::Sparse)
            );
        }
    }
}
