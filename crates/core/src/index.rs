//! The RAMBO index structure and Algorithm 1 (insertion).

use crate::error::RamboError;
use crate::matrix::BfuMatrix;
use crate::params::RamboParams;
use crate::partition::{derive_seeds, Resolver};
use rambo_bitvec::BitVec;
use rambo_hash::{HashPair, SplitMix64};
use std::collections::HashMap;

/// Identifier of a registered document (dense, issued in insertion order).
pub type DocId = u32;

/// One repetition: the `B` BFUs stored as a position-major bit matrix (see
/// [`crate::matrix`]) plus the document→bucket assignment that drives both
/// insertion and the union step of Algorithm 2.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Table {
    /// The Bloom Filters for the Union, column-wise.
    pub matrix: BfuMatrix,
    /// Documents assigned to each bucket (sorted ascending — ids are issued
    /// monotonically and fold-over re-sorts).
    pub buckets: Vec<Vec<DocId>>,
    /// Per-document bucket, parallel to the registry.
    pub assign: Vec<u32>,
}

impl Table {
    pub(crate) fn new(buckets: usize, m_bits: usize) -> Self {
        Self {
            matrix: BfuMatrix::new(m_bits, buckets),
            buckets: vec![Vec::new(); buckets],
            assign: Vec::new(),
        }
    }
}

/// The Repeated And Merged BloOm filter: a `B × R` grid of BFUs (Figure 2 of
/// the paper).
///
/// See the [crate docs](crate) for the algorithmic overview and
/// [`crate::RamboBuilder`] for guided parameter selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Rambo {
    params: RamboParams,
    pub(crate) resolver: Resolver,
    /// Per-repetition Bloom hash seeds, derived from the master seed.
    ///
    /// Seeds are shared by every BFU *within* a repetition (required for
    /// fold-over and stacking, which OR filters of the same table), but are
    /// **independent across repetitions**: if they were shared, a document's
    /// own term bits would occupy identical positions in all `R` of its
    /// buckets, making Bloom false positives survive every repetition at
    /// once and voiding the independence behind Lemma 4.1. (The paper's
    /// §5.3 seed-sharing requirement is about machines, not repetitions.)
    pub(crate) bloom_seeds: Vec<u64>,
    pub(crate) tables: Vec<Table>,
    pub(crate) doc_names: Vec<String>,
    pub(crate) name_index: HashMap<String, DocId>,
    /// Bucket count after `fold_factor` fold-overs (`B₀ / 2^fold_factor`).
    pub(crate) current_buckets: u64,
    pub(crate) fold_factor: u32,
    /// Total term insertions performed (with multiplicity).
    pub(crate) inserts: u64,
}

impl Rambo {
    /// Create an empty index.
    ///
    /// # Errors
    /// [`RamboError::InvalidParams`] when dimensions are degenerate.
    pub fn new(params: RamboParams) -> Result<Self, RamboError> {
        params.validate()?;
        let seeds = derive_seeds(params.seed);
        let resolver = Resolver::new(params.partition, params.repetitions, seeds.partition);
        Ok(Self::from_parts(params, resolver, seeds.bloom))
    }

    /// Internal constructor shared with the sharded builder (which supplies a
    /// node-local resolver).
    pub(crate) fn from_parts(params: RamboParams, resolver: Resolver, bloom_seed: u64) -> Self {
        let b = params.buckets() as usize;
        let mut stream = SplitMix64::new(bloom_seed);
        Self {
            tables: (0..params.repetitions)
                .map(|_| Table::new(b, params.bfu_bits))
                .collect(),
            resolver,
            bloom_seeds: (0..params.repetitions).map(|_| stream.next_u64()).collect(),
            doc_names: Vec::new(),
            name_index: HashMap::new(),
            current_buckets: params.buckets(),
            fold_factor: 0,
            inserts: 0,
            params,
        }
    }

    /// The construction parameters (pre-fold geometry).
    #[must_use]
    pub fn params(&self) -> &RamboParams {
        &self.params
    }

    /// Number of repetitions `R`.
    #[must_use]
    pub fn repetitions(&self) -> usize {
        self.params.repetitions
    }

    /// Current bucket count `B` (halved by each fold-over).
    #[must_use]
    pub fn buckets(&self) -> u64 {
        self.current_buckets
    }

    /// How many times the index has been folded.
    #[must_use]
    pub fn fold_factor(&self) -> u32 {
        self.fold_factor
    }

    /// Number of registered documents `K`.
    #[must_use]
    pub fn num_documents(&self) -> usize {
        self.doc_names.len()
    }

    /// Total term insertions performed (with multiplicity).
    #[must_use]
    pub fn total_inserts(&self) -> u64 {
        self.inserts
    }

    /// Name of a document.
    ///
    /// # Panics
    /// Panics if the id was not issued by this index.
    #[must_use]
    pub fn document_name(&self, id: DocId) -> &str {
        &self.doc_names[id as usize]
    }

    /// Look up a document id by name.
    #[must_use]
    pub fn document_id(&self, name: &str) -> Option<DocId> {
        self.name_index.get(name).copied()
    }

    /// All document names in id order.
    #[must_use]
    pub fn document_names(&self) -> &[String] {
        &self.doc_names
    }

    /// The bucket of document `doc` in repetition `rep` (after folds).
    ///
    /// # Panics
    /// Panics if `rep` or `doc` is out of range.
    #[must_use]
    pub fn bucket_of(&self, rep: usize, doc: DocId) -> u32 {
        self.tables[rep].assign[doc as usize]
    }

    /// Register a document. The name is the partition-hash identity: the
    /// same name always lands in the same `R` buckets, on any machine with
    /// the same seed (paper §5.3).
    ///
    /// # Errors
    /// [`RamboError::DuplicateDocument`] when the name is already indexed.
    pub fn add_document(&mut self, name: &str) -> Result<DocId, RamboError> {
        if self.name_index.contains_key(name) {
            return Err(RamboError::DuplicateDocument(name.to_string()));
        }
        let id = u32::try_from(self.doc_names.len())
            .map_err(|_| RamboError::InvalidParams("document count exceeds u32".into()))?;
        self.doc_names.push(name.to_string());
        self.name_index.insert(name.to_string(), id);
        for rep in 0..self.params.repetitions {
            // Raw bucket in the unfolded range, then the fold composition.
            let raw = self.resolver.bucket(rep, name.as_bytes());
            let bucket = (raw % self.current_buckets) as u32;
            let table = &mut self.tables[rep];
            table.assign.push(bucket);
            table.buckets[bucket as usize].push(id);
        }
        Ok(id)
    }

    /// Hash a byte term for repetition `rep` (each repetition draws an
    /// independent Bloom hash family; within a repetition all BFUs share it).
    #[inline]
    #[must_use]
    pub fn hash_bytes_rep(&self, rep: usize, term: &[u8]) -> HashPair {
        HashPair::of_bytes(term, self.bloom_seeds[rep])
    }

    /// Hash a packed 64-bit term (e.g. a 2-bit-encoded k-mer) for
    /// repetition `rep`.
    #[inline]
    #[must_use]
    pub fn hash_u64_rep(&self, rep: usize, term: u64) -> HashPair {
        HashPair::of_u64(term, self.bloom_seeds[rep])
    }

    /// Insert a packed 64-bit term of `doc` into its `R` assigned BFUs
    /// (Algorithm 1's inner loop; the term is hashed once per repetition).
    ///
    /// # Errors
    /// [`RamboError::UnknownDocument`] if `doc` was not issued by this index.
    #[inline]
    pub fn insert_term_u64(&mut self, doc: DocId, term: u64) -> Result<(), RamboError> {
        if doc as usize >= self.doc_names.len() {
            return Err(RamboError::UnknownDocument(doc));
        }
        let eta = self.params.eta;
        for (rep, table) in self.tables.iter_mut().enumerate() {
            let bucket = table.assign[doc as usize] as usize;
            let pair = HashPair::of_u64(term, self.bloom_seeds[rep]);
            table.matrix.insert(bucket, pair, eta);
        }
        self.inserts += 1;
        Ok(())
    }

    /// Insert a byte term.
    ///
    /// # Errors
    /// [`RamboError::UnknownDocument`] if `doc` was not issued by this index.
    #[inline]
    pub fn insert_term_bytes(&mut self, doc: DocId, term: &[u8]) -> Result<(), RamboError> {
        if doc as usize >= self.doc_names.len() {
            return Err(RamboError::UnknownDocument(doc));
        }
        let eta = self.params.eta;
        for (rep, table) in self.tables.iter_mut().enumerate() {
            let bucket = table.assign[doc as usize] as usize;
            let pair = HashPair::of_bytes(term, self.bloom_seeds[rep]);
            table.matrix.insert(bucket, pair, eta);
        }
        self.inserts += 1;
        Ok(())
    }

    /// Register a document and ingest its whole term set — the typical
    /// ingestion call (one McCortex file, one tokenized web page, …).
    ///
    /// Routed through the batch engine ([`Rambo::insert_document_batch`]):
    /// the term set is deduplicated, hashed once per repetition, and written
    /// row-grouped — bit-identical to the former term-at-a-time loop but
    /// substantially faster for real document sizes.
    ///
    /// ```
    /// use rambo_core::{Rambo, RamboParams};
    ///
    /// // 8 buckets × 3 repetitions of 4096-bit BFUs, η = 2 hash functions.
    /// let mut index = Rambo::new(RamboParams::flat(8, 3, 1 << 12, 2, 7)).unwrap();
    /// let doc = index.insert_document("genome-A", [0xAC67u64, 0xBEEF]).unwrap();
    /// assert_eq!(index.query_u64(0xAC67), vec![doc]); // zero false negatives
    /// assert_eq!(index.total_inserts(), 2);
    /// ```
    ///
    /// # Errors
    /// [`RamboError::DuplicateDocument`] when the name is already indexed.
    pub fn insert_document(
        &mut self,
        name: &str,
        terms: impl IntoIterator<Item = u64>,
    ) -> Result<DocId, RamboError> {
        let terms: Vec<u64> = terms.into_iter().collect();
        self.insert_document_batch(name, &terms)
    }

    /// Heap bytes of the index payload: BFU bits plus the bucket/assignment
    /// auxiliary structures (the paper's reported sizes include "all
    /// auxiliary data structures (like the inverted index mapping B buckets
    /// to K documents)", §5.2).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        let mut total = 0;
        for table in &self.tables {
            total += table.matrix.size_bytes();
            total += table.assign.len() * 4;
            total += table
                .buckets
                .iter()
                .map(|b| b.len() * 4 + std::mem::size_of::<Vec<DocId>>())
                .sum::<usize>();
        }
        total += self
            .doc_names
            .iter()
            .map(|n| n.len() + std::mem::size_of::<String>())
            .sum::<usize>();
        total
    }

    /// Convert every repetition's matrix to RRR-compressed row storage
    /// (the cold-tier form of [`crate::TierCompression::Rrr`]). Queries
    /// keep answering identically — probes decode touched rows block-wise —
    /// and any later mutation transparently materializes dense words again.
    pub fn compress_to_rrr(&mut self) {
        for table in &mut self.tables {
            table.matrix.compress_rrr();
        }
    }

    /// True when every repetition's matrix is RRR-compressed.
    #[must_use]
    pub fn is_compressed(&self) -> bool {
        self.tables.iter().all(|t| t.matrix.is_compressed())
    }

    /// True when every repetition's matrix payload is file-backed (came
    /// from [`Rambo::open_paged_at`] and has not been written to).
    #[must_use]
    pub fn tables_paged(&self) -> bool {
        self.tables.iter().all(|t| t.matrix.is_paged())
    }

    /// Mean and maximum BFU fill ratio — the observable that predicts the
    /// per-BFU `p` of Lemmas 4.1/4.2.
    #[must_use]
    pub fn fill_stats(&self) -> (f64, f64) {
        let m = self.params.bfu_bits as f64;
        let mut sum = 0.0;
        let mut max: f64 = 0.0;
        let mut n = 0usize;
        for table in &self.tables {
            for ones in table.matrix.column_ones() {
                let f = ones as f64 / m;
                sum += f;
                max = max.max(f);
                n += 1;
            }
        }
        (if n == 0 { 0.0 } else { sum / n as f64 }, max)
    }

    /// Mean estimated per-BFU false-positive rate (`fillᵉᵗᵃ`, averaged).
    #[must_use]
    pub fn estimated_bfu_fpr(&self) -> f64 {
        let m = self.params.bfu_bits as f64;
        let eta = self.params.eta as i32;
        let mut sum = 0.0;
        let mut n = 0usize;
        for table in &self.tables {
            for ones in table.matrix.column_ones() {
                sum += (ones as f64 / m).powi(eta);
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Extract one BFU's filter image (column of the position-major matrix).
    /// O(m) — for inspection, tests and cross-checks, not query paths.
    ///
    /// # Panics
    /// Panics when out of range.
    #[must_use]
    pub fn bfu_bits(&self, rep: usize, bucket: usize) -> BitVec {
        self.tables[rep].matrix.column(bucket)
    }

    /// Does the BFU at `(rep, bucket)` report this pre-hashed term?
    ///
    /// # Panics
    /// Panics when out of range.
    #[must_use]
    pub fn bfu_contains_pair(&self, rep: usize, bucket: usize, pair: HashPair) -> bool {
        self.tables[rep]
            .matrix
            .probe_bucket(bucket, &[pair], self.params.eta)
    }

    /// Does the BFU at `(rep, bucket)` report this packed term?
    ///
    /// # Panics
    /// Panics when out of range.
    #[must_use]
    pub fn bfu_contains_u64(&self, rep: usize, bucket: usize, term: u64) -> bool {
        self.bfu_contains_pair(rep, bucket, self.hash_u64_rep(rep, term))
    }

    /// Documents currently assigned to a bucket.
    ///
    /// # Panics
    /// Panics when out of range.
    #[must_use]
    pub fn bucket_documents(&self, rep: usize, bucket: usize) -> &[DocId] {
        &self.tables[rep].buckets[bucket]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::PartitionScheme;

    fn small() -> Rambo {
        Rambo::new(RamboParams::flat(8, 3, 1 << 12, 2, 42)).unwrap()
    }

    #[test]
    fn registry_issues_dense_ids() {
        let mut r = small();
        assert_eq!(r.add_document("a").unwrap(), 0);
        assert_eq!(r.add_document("b").unwrap(), 1);
        assert_eq!(r.num_documents(), 2);
        assert_eq!(r.document_name(1), "b");
        assert_eq!(r.document_id("a"), Some(0));
        assert_eq!(r.document_id("zz"), None);
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut r = small();
        r.add_document("a").unwrap();
        assert!(matches!(
            r.add_document("a"),
            Err(RamboError::DuplicateDocument(_))
        ));
        assert_eq!(r.num_documents(), 1);
    }

    #[test]
    fn assignment_is_consistent_across_structures() {
        let mut r = small();
        for i in 0..50 {
            r.add_document(&format!("doc{i}")).unwrap();
        }
        for rep in 0..3 {
            let mut seen = 0;
            for b in 0..8usize {
                for &d in r.bucket_documents(rep, b) {
                    assert_eq!(r.bucket_of(rep, d), b as u32);
                    seen += 1;
                }
            }
            assert_eq!(seen, 50, "every doc in exactly one bucket per table");
        }
    }

    #[test]
    fn buckets_are_roughly_balanced() {
        let mut r = Rambo::new(RamboParams::flat(16, 1, 1 << 10, 2, 7)).unwrap();
        for i in 0..1600 {
            r.add_document(&format!("doc{i}")).unwrap();
        }
        for b in 0..16usize {
            let n = r.bucket_documents(0, b).len();
            assert!((40..200).contains(&n), "bucket {b} holds {n} docs");
        }
    }

    #[test]
    fn insert_rejects_unknown_doc() {
        let mut r = small();
        assert!(matches!(
            r.insert_term_u64(5, 123),
            Err(RamboError::UnknownDocument(5))
        ));
    }

    #[test]
    fn insert_sets_bits_in_every_repetition() {
        let mut r = small();
        let d = r.add_document("x").unwrap();
        r.insert_term_u64(d, 0xDEAD_BEEF).unwrap();
        for rep in 0..3 {
            let b = r.bucket_of(rep, d) as usize;
            assert!(r.bfu_contains_u64(rep, b, 0xDEAD_BEEF), "rep {rep}");
        }
        assert_eq!(r.total_inserts(), 1);
    }

    #[test]
    fn insert_document_streams_terms() {
        let mut r = small();
        let d = r.insert_document("y", [1u64, 2, 3]).unwrap();
        assert_eq!(r.total_inserts(), 3);
        for rep in 0..3 {
            let b = r.bucket_of(rep, d) as usize;
            for t in [1u64, 2, 3] {
                assert!(r.bfu_contains_u64(rep, b, t));
            }
        }
    }

    #[test]
    fn two_level_scheme_constructs() {
        let p = RamboParams::two_level(4, 4, 2, 1 << 10, 2, 3);
        let mut r = Rambo::new(p).unwrap();
        assert_eq!(r.buckets(), 16);
        r.add_document("d").unwrap();
        assert!(matches!(
            r.params().partition,
            PartitionScheme::TwoLevel { .. }
        ));
    }

    #[test]
    fn size_accounts_bfus_and_aux() {
        let mut r = small();
        let bare = r.size_bytes();
        // 8 buckets × 3 reps × 4096 bits = 12 KiB of filters minimum.
        assert!(bare >= 8 * 3 * (1 << 12) / 8);
        r.add_document("some-name").unwrap();
        assert!(r.size_bytes() > bare);
    }

    #[test]
    fn fill_stats_track_insertions() {
        let mut r = small();
        let (mean0, max0) = r.fill_stats();
        assert_eq!((mean0, max0), (0.0, 0.0));
        let d = r.add_document("z").unwrap();
        for t in 0..200u64 {
            r.insert_term_u64(d, t).unwrap();
        }
        let (mean, max) = r.fill_stats();
        assert!(mean > 0.0 && max > mean / 2.0);
        assert!(r.estimated_bfu_fpr() > 0.0);
    }
}
