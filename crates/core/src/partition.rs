//! Document partition schemes and the resolver that maps a document name to
//! its bucket in each repetition.

use rambo_hash::{PartitionHasher, SplitMix64, TwoLevelHash};

/// How the `B` buckets of each repetition are laid out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PartitionScheme {
    /// Single-machine layout: `φᵢ(name)` directly in `[0, buckets)`.
    Flat {
        /// Total buckets `B`.
        buckets: u64,
    },
    /// §5.3 distributed layout: `τ(name)` picks one of `nodes` machines,
    /// `φᵢ(name)` a machine-local bucket; the global bucket is
    /// `local_buckets·τ + φᵢ`. A monolithic index built with this scheme is
    /// bit-identical to the stacked result of the corresponding sharded
    /// build.
    TwoLevel {
        /// Number of (simulated) machines `N`.
        nodes: u64,
        /// Buckets per machine `b`.
        local_buckets: u64,
    },
}

impl PartitionScheme {
    /// Global bucket count `B`.
    #[must_use]
    pub fn total_buckets(&self) -> u64 {
        match *self {
            Self::Flat { buckets } => buckets,
            Self::TwoLevel {
                nodes,
                local_buckets,
            } => nodes * local_buckets,
        }
    }
}

/// Derivation offsets so each hash family gets an independent stream from the
/// master seed. Shared between [`Resolver`] and the Bloom layer.
pub(crate) fn derive_seeds(master: u64) -> DerivedSeeds {
    let mut s = SplitMix64::new(master ^ 0x524d_424f_5345_4544); // "RMBOSEED"
    DerivedSeeds {
        bloom: s.next_u64(),
        partition: s.next_u64(),
    }
}

/// The two independent seed streams of an index.
#[derive(Debug, Clone, Copy)]
pub(crate) struct DerivedSeeds {
    /// Seed of the (single, shared) Bloom hash family.
    pub bloom: u64,
    /// Seed from which the partition/router hashes derive.
    pub partition: u64,
}

/// Maps `(repetition, document name)` to a bucket in the *unfolded* range
/// `[0, B₀)`. Fold-over composes this with `mod current_B` at the call site.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Resolver {
    /// One independent 2-universal hasher per repetition.
    Flat(Vec<PartitionHasher>),
    /// The composed two-level router of §5.3.
    TwoLevel(TwoLevelHash),
    /// A single node's view inside a sharded build: only the node-local
    /// `φᵢ` is evaluated; bucket range is `[0, local_buckets)`.
    NodeLocal {
        /// Shared router (identical across all nodes of the build).
        router: TwoLevelHash,
        /// Which node this resolver serves.
        node: u64,
    },
}

impl Resolver {
    /// Build the resolver for a scheme, deriving per-repetition seeds from
    /// the partition seed stream.
    pub(crate) fn new(scheme: PartitionScheme, repetitions: usize, partition_seed: u64) -> Self {
        match scheme {
            PartitionScheme::Flat { buckets } => {
                let mut s = SplitMix64::new(partition_seed);
                Self::Flat(
                    (0..repetitions)
                        .map(|_| PartitionHasher::new(s.next_u64(), buckets))
                        .collect(),
                )
            }
            PartitionScheme::TwoLevel {
                nodes,
                local_buckets,
            } => Self::TwoLevel(TwoLevelHash::new(
                partition_seed,
                nodes,
                repetitions,
                local_buckets,
            )),
        }
    }

    /// The router identical to what a [`PartitionScheme::TwoLevel`] resolver
    /// would use — this is how sharded nodes share hashes with the
    /// monolithic index.
    pub(crate) fn shared_router(
        nodes: u64,
        local_buckets: u64,
        repetitions: usize,
        partition_seed: u64,
    ) -> TwoLevelHash {
        TwoLevelHash::new(partition_seed, nodes, repetitions, local_buckets)
    }

    /// Bucket of `name` in repetition `rep`, in the unfolded range.
    #[inline]
    pub(crate) fn bucket(&self, rep: usize, name: &[u8]) -> u64 {
        match self {
            Self::Flat(hashers) => hashers[rep].bucket_of_name(name),
            Self::TwoLevel(router) => router.global_bucket(rep, name),
            Self::NodeLocal { router, .. } => router.local_bucket(rep, name),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_resolver_buckets_in_range_and_stable() {
        let r = Resolver::new(PartitionScheme::Flat { buckets: 16 }, 3, 99);
        for rep in 0..3 {
            for i in 0..100 {
                let name = format!("d{i}");
                let b = r.bucket(rep, name.as_bytes());
                assert!(b < 16);
                assert_eq!(b, r.bucket(rep, name.as_bytes()));
            }
        }
    }

    #[test]
    fn repetitions_use_independent_hashes() {
        let r = Resolver::new(PartitionScheme::Flat { buckets: 64 }, 2, 7);
        let mut same = 0;
        for i in 0..500 {
            let name = format!("doc-{i}");
            if r.bucket(0, name.as_bytes()) == r.bucket(1, name.as_bytes()) {
                same += 1;
            }
        }
        // Independent hashes collide ~1/64 of the time; identical ones 100%.
        assert!(same < 40, "repetitions look correlated: {same}/500");
    }

    #[test]
    fn two_level_equals_node_local_plus_offset() {
        let scheme = PartitionScheme::TwoLevel {
            nodes: 4,
            local_buckets: 8,
        };
        let global = Resolver::new(scheme, 2, 55);
        let router = Resolver::shared_router(4, 8, 2, 55);
        for i in 0..200 {
            let name = format!("g{i}");
            let node = router.node_of(name.as_bytes());
            let local = Resolver::NodeLocal {
                router: router.clone(),
                node,
            };
            for rep in 0..2 {
                assert_eq!(
                    global.bucket(rep, name.as_bytes()),
                    8 * node + local.bucket(rep, name.as_bytes()),
                );
            }
        }
    }
}
