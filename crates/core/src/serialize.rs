//! Binary serialization of a RAMBO index.
//!
//! The paper's workflow writes indexes to disk after construction (the 170TB
//! build produces a 1.8TB serialized index; fold-over derives smaller
//! versions offline). The format here is self-describing and validated:
//!
//! ```text
//! magic "RMB1" | version u16
//! partition tag u8 (+ fields) | repetitions u32 | bfu_bits u64 | eta u32 | seed u64
//! fold_factor u32 | inserts u64 | K u32
//! K × (name_len u32, utf8 bytes)
//! R × ( K × assign u32, BFU matrix )
//! ```
//!
//! Bucket lists and the name lookup table are reconstructed from `assign` on
//! load; the resolver is re-derived from the seed (all hash functions are
//! deterministic in it).

use crate::error::RamboError;
use crate::index::{DocId, Rambo};
use crate::matrix::BfuMatrix;
use crate::params::RamboParams;
use crate::partition::{derive_seeds, PartitionScheme, Resolver};
use bytes::{Buf, BufMut};
use rambo_bitvec::DecodeError;

const MAGIC: &[u8; 4] = b"RMB1";
const VERSION: u16 = 1;

fn short(buf: &[u8], need: usize, what: &str) -> Result<(), RamboError> {
    if buf.remaining() < need {
        return Err(DecodeError::new(format!("truncated while reading {what}")).into());
    }
    Ok(())
}

impl Rambo {
    /// Serialize the full index.
    ///
    /// # Errors
    /// [`RamboError::InvalidParams`] for node-local shards of a sharded
    /// build (stack them first — a shard alone has no global identity).
    pub fn to_bytes(&self) -> Result<Vec<u8>, RamboError> {
        if matches!(self.resolver, Resolver::NodeLocal { .. }) {
            return Err(RamboError::InvalidParams(
                "node-local shards cannot be serialized; stack the sharded build first".into(),
            ));
        }
        let mut out = Vec::with_capacity(64 + self.size_bytes());
        out.put_slice(MAGIC);
        out.put_u16_le(VERSION);
        match self.params().partition {
            PartitionScheme::Flat { buckets } => {
                out.put_u8(0);
                out.put_u64_le(buckets);
                out.put_u64_le(0);
            }
            PartitionScheme::TwoLevel {
                nodes,
                local_buckets,
            } => {
                out.put_u8(1);
                out.put_u64_le(nodes);
                out.put_u64_le(local_buckets);
            }
        }
        out.put_u32_le(self.params().repetitions as u32);
        out.put_u64_le(self.params().bfu_bits as u64);
        out.put_u32_le(self.params().eta);
        out.put_u64_le(self.params().seed);
        out.put_u32_le(self.fold_factor);
        out.put_u64_le(self.inserts);
        out.put_u32_le(self.doc_names.len() as u32);
        for name in &self.doc_names {
            out.put_u32_le(name.len() as u32);
            out.put_slice(name.as_bytes());
        }
        for table in &self.tables {
            for &a in &table.assign {
                out.put_u32_le(a);
            }
            table.matrix.encode_into(&mut out);
        }
        Ok(out)
    }

    /// Deserialize an index, validating structure and ranges.
    ///
    /// # Errors
    /// [`RamboError::Decode`] on any malformed input.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self, RamboError> {
        let buf = &mut buf;
        short(buf, 6, "header")?;
        let mut magic = [0u8; 4];
        buf.copy_to_slice(&mut magic);
        if &magic != MAGIC {
            return Err(DecodeError::new("bad RAMBO magic").into());
        }
        if buf.get_u16_le() != VERSION {
            return Err(DecodeError::new("unsupported RAMBO version").into());
        }
        short(buf, 1 + 8 + 8 + 4 + 8 + 4 + 4 + 8 + 4, "geometry")?;
        let partition = match buf.get_u8() {
            0 => {
                let buckets = buf.get_u64_le();
                let _ = buf.get_u64_le();
                PartitionScheme::Flat { buckets }
            }
            1 => PartitionScheme::TwoLevel {
                nodes: buf.get_u64_le(),
                local_buckets: buf.get_u64_le(),
            },
            t => return Err(DecodeError::new(format!("unknown partition tag {t}")).into()),
        };
        let repetitions = buf.get_u32_le() as usize;
        let bfu_bits = usize::try_from(buf.get_u64_le())
            .map_err(|_| DecodeError::new("bfu_bits exceeds address space"))?;
        let eta = buf.get_u32_le();
        let seed = buf.get_u64_le();
        let fold_factor = buf.get_u32_le();
        let inserts = buf.get_u64_le();
        let params = RamboParams {
            partition,
            repetitions,
            bfu_bits,
            eta,
            seed,
        };
        params.validate().map_err(|e| {
            RamboError::Decode(DecodeError::new(format!("stored parameters invalid: {e}")))
        })?;
        let b0 = params.buckets();
        if fold_factor > 32 || (b0 >> fold_factor) < 2 {
            return Err(DecodeError::new("fold factor inconsistent with bucket count").into());
        }
        let current_buckets = b0 >> fold_factor;

        let k = buf.get_u32_le() as usize;
        let mut doc_names = Vec::with_capacity(k.min(1 << 20));
        for _ in 0..k {
            short(buf, 4, "name length")?;
            let len = buf.get_u32_le() as usize;
            short(buf, len, "name bytes")?;
            let mut bytes = vec![0u8; len];
            buf.copy_to_slice(&mut bytes);
            let name = String::from_utf8(bytes)
                .map_err(|_| DecodeError::new("document name is not UTF-8"))?;
            doc_names.push(name);
        }

        let seeds = derive_seeds(seed);
        let mut index = Self::from_parts(
            params,
            Resolver::new(partition, repetitions, seeds.partition),
            seeds.bloom,
        );
        // Apply the recorded fold level to the freshly built geometry.
        index.current_buckets = current_buckets;
        index.fold_factor = fold_factor;
        index.inserts = inserts;
        for table in &mut index.tables {
            *table = crate::index::Table::new(current_buckets as usize, bfu_bits);
        }

        for table in &mut index.tables {
            short(buf, 4 * k, "assignment vector")?;
            table.assign = (0..k).map(|_| buf.get_u32_le()).collect();
            for (doc, &a) in table.assign.iter().enumerate() {
                if u64::from(a) >= current_buckets {
                    return Err(DecodeError::new(format!(
                        "assignment {a} of doc {doc} out of range {current_buckets}"
                    ))
                    .into());
                }
                table.buckets[a as usize].push(doc as DocId);
            }
            let matrix = BfuMatrix::decode_from(buf)?;
            if matrix.m_bits() != bfu_bits || matrix.buckets() as u64 != current_buckets {
                return Err(
                    DecodeError::new("stored matrix geometry disagrees with header").into(),
                );
            }
            table.matrix = matrix;
        }
        let _ = eta;
        if !buf.is_empty() {
            return Err(DecodeError::new("trailing bytes after RAMBO index").into());
        }
        for (id, name) in doc_names.iter().enumerate() {
            if index.name_index.insert(name.clone(), id as DocId).is_some() {
                return Err(DecodeError::new(format!("duplicate document name {name}")).into());
            }
        }
        index.doc_names = doc_names;
        Ok(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_sample() -> Rambo {
        let mut r = Rambo::new(RamboParams::flat(8, 3, 1 << 12, 2, 77)).unwrap();
        for d in 0..20 {
            let base = (d as u64) << 16;
            r.insert_document(&format!("doc{d}"), (0..30u64).map(|t| base | t))
                .unwrap();
        }
        r
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let r = build_sample();
        let bytes = r.to_bytes().unwrap();
        let back = Rambo::from_bytes(&bytes).unwrap();
        assert_eq!(r, back);
        // Queries agree, including for absent terms.
        for t in [0u64, 5, (3 << 16) | 2, 0xDEAD] {
            assert_eq!(r.query_u64(t), back.query_u64(t));
        }
    }

    #[test]
    fn roundtrip_after_folding() {
        let mut r = build_sample();
        r.fold_once().unwrap();
        let back = Rambo::from_bytes(&r.to_bytes().unwrap()).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.fold_factor(), 1);
        assert_eq!(back.buckets(), 4);
    }

    #[test]
    fn loaded_index_accepts_new_documents() {
        let r = build_sample();
        let mut back = Rambo::from_bytes(&r.to_bytes().unwrap()).unwrap();
        let d = back.insert_document("new-doc", [0xCAFEu64]).unwrap();
        assert!(back.query_u64(0xCAFE).contains(&d));
        // The resolver was re-derived from the seed: the same name must land
        // in the same buckets as in the original index.
        let mut orig = r.clone();
        let d2 = orig.insert_document("new-doc", [0xCAFEu64]).unwrap();
        for rep in 0..3 {
            assert_eq!(orig.bucket_of(rep, d2), back.bucket_of(rep, d));
        }
    }

    #[test]
    fn rejects_corruption() {
        let r = build_sample();
        let bytes = r.to_bytes().unwrap();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Rambo::from_bytes(&bad).is_err());

        assert!(Rambo::from_bytes(&bytes[..bytes.len() / 2]).is_err());

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Rambo::from_bytes(&trailing).is_err());
    }

    #[test]
    fn rejects_out_of_range_assignment() {
        let r = build_sample();
        let mut bytes = r.to_bytes().unwrap();
        // The first assign word sits right after the names section; find it
        // by re-encoding a modified struct instead of byte surgery: flip an
        // assignment directly in a clone and ensure validation catches it.
        // (Byte-offset surgery would be brittle; we corrupt the u32 that
        // follows the last name, which is the first assignment.)
        let names_len: usize = r
            .document_names()
            .iter()
            .map(|n| 4 + n.len())
            .sum::<usize>();
        let offset = 4 + 2 + 17 + 4 + 8 + 4 + 8 + 4 + 8 + 4 + names_len;
        bytes[offset] = 0xFF; // assignment 0xFF ≥ 8 buckets
        assert!(Rambo::from_bytes(&bytes).is_err());
    }

    #[test]
    fn two_level_roundtrip() {
        let mut r = Rambo::new(RamboParams::two_level(4, 4, 2, 1 << 10, 2, 5)).unwrap();
        r.insert_document("a", [1u64, 2]).unwrap();
        r.insert_document("b", [3u64]).unwrap();
        let back = Rambo::from_bytes(&r.to_bytes().unwrap()).unwrap();
        assert_eq!(r, back);
    }
}
