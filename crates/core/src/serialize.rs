//! Binary serialization of a RAMBO index.
//!
//! The paper's workflow writes indexes to disk after construction (the 170TB
//! build produces a 1.8TB serialized index; fold-over derives smaller
//! versions offline). The format here is self-describing and validated:
//!
//! ```text
//! magic "RMB1" | version u16 (= 2)
//! partition tag u8 (+ fields) | repetitions u32 | bfu_bits u64 | eta u32 | seed u64
//!   tag 0 Flat:      buckets u64 | 0 u64
//!   tag 1 TwoLevel:  nodes u64 | local_buckets u64
//!   tag 2 NodeLocal: local_buckets u64 | nodes u64 | node u64
//! fold_factor u32 | inserts u64 | K u32
//! K × (name_len u32, utf8 bytes)
//! R × ( K × assign u32, BFU matrix [8-byte-aligned word payload] )
//! ```
//!
//! Bucket lists and the name lookup table are reconstructed from `assign` on
//! load; the resolver is re-derived from the seed (all hash functions are
//! deterministic in it).
//!
//! Version 2 revs the matrix encoding to 8-byte-align every word payload
//! relative to the start of the buffer, which enables the **zero-copy load
//! path**: [`Rambo::open_view`] parses the metadata and then *borrows* each
//! matrix payload in place from a shared `Arc<[u8]>` (typically a
//! memory-mapped index file) — no word is copied, so re-opening the
//! fold-over workflow's "several index versions on disk" costs metadata
//! time, not payload time. [`Rambo::open_view_at`] additionally supports
//! several indexes concatenated in one buffer.

use crate::error::RamboError;
use crate::index::{DocId, Rambo, Table};
use crate::matrix::BfuMatrix;
use crate::params::RamboParams;
use crate::partition::{derive_seeds, PartitionScheme, Resolver};
use bytes::{Buf, BufMut};
use rambo_bitvec::{BlockCacheCounters, DecodeError, PagedFile};
use std::sync::Arc;

const MAGIC: &[u8; 4] = b"RMB1";
const VERSION: u16 = 2;

fn short(buf: &[u8], need: usize, what: &str) -> Result<(), RamboError> {
    if buf.remaining() < need {
        return Err(DecodeError::new(format!("truncated while reading {what}")).into());
    }
    Ok(())
}

/// Everything that precedes the per-table payloads in the serialized form.
struct Prelude {
    params: RamboParams,
    fold_factor: u32,
    inserts: u64,
    current_buckets: u64,
    doc_names: Vec<String>,
    /// `(nodes, node)` for a node-local shard of a sharded build (partition
    /// tag 2); `None` for standalone indexes.
    node_ctx: Option<(u64, u64)>,
}

/// Decode the header, geometry and document names, advancing `buf`.
fn decode_prelude(buf: &mut &[u8]) -> Result<Prelude, RamboError> {
    short(buf, 6, "header")?;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(DecodeError::new("bad RAMBO magic").into());
    }
    if buf.get_u16_le() != VERSION {
        return Err(DecodeError::new("unsupported RAMBO version").into());
    }
    short(buf, 1 + 8 + 8 + 4 + 8 + 4 + 4 + 8 + 4, "geometry")?;
    let mut node_ctx = None;
    let partition = match buf.get_u8() {
        0 => {
            let buckets = buf.get_u64_le();
            let _ = buf.get_u64_le();
            PartitionScheme::Flat { buckets }
        }
        1 => PartitionScheme::TwoLevel {
            nodes: buf.get_u64_le(),
            local_buckets: buf.get_u64_le(),
        },
        2 => {
            // A node-local shard: flat over its local buckets, but routed
            // through the shared two-level hash of its parent build.
            let local_buckets = buf.get_u64_le();
            let nodes = buf.get_u64_le();
            // The extra node-id word shifts the rest of the geometry block
            // past the upfront bound; re-check before reading on.
            short(buf, 8 + 4 + 8 + 4 + 8 + 4 + 8 + 4, "node-local geometry")?;
            let node = buf.get_u64_le();
            if node >= nodes {
                return Err(
                    DecodeError::new(format!("node id {node} out of range {nodes}")).into(),
                );
            }
            node_ctx = Some((nodes, node));
            PartitionScheme::Flat {
                buckets: local_buckets,
            }
        }
        t => return Err(DecodeError::new(format!("unknown partition tag {t}")).into()),
    };
    let repetitions = buf.get_u32_le() as usize;
    let bfu_bits = usize::try_from(buf.get_u64_le())
        .map_err(|_| DecodeError::new("bfu_bits exceeds address space"))?;
    let eta = buf.get_u32_le();
    let seed = buf.get_u64_le();
    let fold_factor = buf.get_u32_le();
    let inserts = buf.get_u64_le();
    let params = RamboParams {
        partition,
        repetitions,
        bfu_bits,
        eta,
        seed,
    };
    params.validate().map_err(|e| {
        RamboError::Decode(DecodeError::new(format!("stored parameters invalid: {e}")))
    })?;
    let b0 = params.buckets();
    if fold_factor > 32 || (b0 >> fold_factor) < 2 {
        return Err(DecodeError::new("fold factor inconsistent with bucket count").into());
    }
    let current_buckets = b0 >> fold_factor;

    let k = buf.get_u32_le() as usize;
    let mut doc_names = Vec::with_capacity(k.min(1 << 20));
    for _ in 0..k {
        short(buf, 4, "name length")?;
        let len = buf.get_u32_le() as usize;
        short(buf, len, "name bytes")?;
        let mut bytes = vec![0u8; len];
        buf.copy_to_slice(&mut bytes);
        let name =
            String::from_utf8(bytes).map_err(|_| DecodeError::new("document name is not UTF-8"))?;
        doc_names.push(name);
    }
    Ok(Prelude {
        params,
        fold_factor,
        inserts,
        current_buckets,
        doc_names,
        node_ctx,
    })
}

/// Build the index skeleton (resolver, empty folded-geometry tables) from a
/// decoded prelude. Names are installed at the end, after the payloads
/// parse, mirroring the original decode order.
fn skeleton(p: &Prelude) -> Rambo {
    let seeds = derive_seeds(p.params.seed);
    let resolver = match p.node_ctx {
        Some((nodes, node)) => {
            let PartitionScheme::Flat { buckets } = p.params.partition else {
                unreachable!("tag-2 preludes always carry flat local params")
            };
            Resolver::NodeLocal {
                router: Resolver::shared_router(
                    nodes,
                    buckets,
                    p.params.repetitions,
                    seeds.partition,
                ),
                node,
            }
        }
        None => Resolver::new(p.params.partition, p.params.repetitions, seeds.partition),
    };
    let mut index = Rambo::from_parts(p.params, resolver, seeds.bloom);
    index.current_buckets = p.current_buckets;
    index.fold_factor = p.fold_factor;
    index.inserts = p.inserts;
    for table in &mut index.tables {
        *table = Table::new(p.current_buckets as usize, p.params.bfu_bits);
    }
    index
}

/// Install one table's assignment vector, rebuilding its bucket lists.
fn install_assignments(
    table: &mut Table,
    assign: Vec<u32>,
    current_buckets: u64,
) -> Result<(), RamboError> {
    table.assign = assign;
    for (doc, &a) in table.assign.iter().enumerate() {
        if u64::from(a) >= current_buckets {
            return Err(DecodeError::new(format!(
                "assignment {a} of doc {doc} out of range {current_buckets}"
            ))
            .into());
        }
        table.buckets[a as usize].push(doc as DocId);
    }
    Ok(())
}

/// Validate a decoded matrix against the header geometry.
fn check_matrix(
    matrix: &BfuMatrix,
    bfu_bits: usize,
    current_buckets: u64,
) -> Result<(), RamboError> {
    if matrix.m_bits() != bfu_bits || matrix.buckets() as u64 != current_buckets {
        return Err(DecodeError::new("stored matrix geometry disagrees with header").into());
    }
    Ok(())
}

/// Register the document names, rejecting duplicates.
fn install_names(index: &mut Rambo, doc_names: Vec<String>) -> Result<(), RamboError> {
    for (id, name) in doc_names.iter().enumerate() {
        if index.name_index.insert(name.clone(), id as DocId).is_some() {
            return Err(DecodeError::new(format!("duplicate document name {name}")).into());
        }
    }
    index.doc_names = doc_names;
    Ok(())
}

impl Rambo {
    /// Serialize the full index. Node-local shards of a sharded build
    /// serialize with their node identity (partition tag 2), so a serving
    /// cluster can ship each node its slice; deserializing re-derives the
    /// shared two-level router from the seed.
    ///
    /// # Errors
    /// [`RamboError::InvalidParams`] for internally inconsistent resolver
    /// state (a node-local resolver over non-flat parameters).
    pub fn to_bytes(&self) -> Result<Vec<u8>, RamboError> {
        let mut out = Vec::with_capacity(64 + self.size_bytes());
        out.put_slice(MAGIC);
        out.put_u16_le(VERSION);
        if let Resolver::NodeLocal { router, node } = &self.resolver {
            let PartitionScheme::Flat {
                buckets: local_buckets,
            } = self.params().partition
            else {
                return Err(RamboError::InvalidParams(
                    "node-local shard carries non-flat parameters".into(),
                ));
            };
            out.put_u8(2);
            out.put_u64_le(local_buckets);
            out.put_u64_le(router.nodes());
            out.put_u64_le(*node);
        } else {
            match self.params().partition {
                PartitionScheme::Flat { buckets } => {
                    out.put_u8(0);
                    out.put_u64_le(buckets);
                    out.put_u64_le(0);
                }
                PartitionScheme::TwoLevel {
                    nodes,
                    local_buckets,
                } => {
                    out.put_u8(1);
                    out.put_u64_le(nodes);
                    out.put_u64_le(local_buckets);
                }
            }
        }
        out.put_u32_le(self.params().repetitions as u32);
        out.put_u64_le(self.params().bfu_bits as u64);
        out.put_u32_le(self.params().eta);
        out.put_u64_le(self.params().seed);
        out.put_u32_le(self.fold_factor);
        out.put_u64_le(self.inserts);
        out.put_u32_le(self.doc_names.len() as u32);
        for name in &self.doc_names {
            out.put_u32_le(name.len() as u32);
            out.put_slice(name.as_bytes());
        }
        for table in &self.tables {
            for &a in &table.assign {
                out.put_u32_le(a);
            }
            table.matrix.encode_into(&mut out);
        }
        Ok(out)
    }

    /// Deserialize an index, validating structure and ranges. Copies every
    /// matrix payload into owned storage; see [`Rambo::open_view`] for the
    /// zero-copy alternative.
    ///
    /// # Errors
    /// [`RamboError::Decode`] on any malformed input.
    pub fn from_bytes(mut buf: &[u8]) -> Result<Self, RamboError> {
        let buf = &mut buf;
        let prelude = decode_prelude(buf)?;
        let k = prelude.doc_names.len();
        let mut index = skeleton(&prelude);
        for table in &mut index.tables {
            short(buf, 4 * k, "assignment vector")?;
            let assign: Vec<u32> = (0..k).map(|_| buf.get_u32_le()).collect();
            install_assignments(table, assign, prelude.current_buckets)?;
            let matrix = BfuMatrix::decode_from(buf)?;
            check_matrix(&matrix, prelude.params.bfu_bits, prelude.current_buckets)?;
            table.matrix = matrix;
        }
        if !buf.is_empty() {
            return Err(DecodeError::new("trailing bytes after RAMBO index").into());
        }
        install_names(&mut index, prelude.doc_names)?;
        Ok(index)
    }

    /// Zero-copy load: parse the metadata and *borrow* every matrix word
    /// payload in place from `buf` (typically an `Arc` around a
    /// memory-mapped index file). Load time is metadata-bound — no word is
    /// copied; validation reads one word per filter row for the tail check.
    ///
    /// The returned index answers every query exactly like the
    /// [`Rambo::from_bytes`] copy would (the property suite pins this).
    /// Mutation still works: the first write to a table promotes that
    /// table's payload to owned storage (one copy, once — see
    /// [`rambo_bitvec::WordStore`]).
    ///
    /// The whole buffer must contain exactly one index; use
    /// [`Rambo::open_view_at`] for multi-index buffers.
    ///
    /// ```
    /// use rambo_core::{Rambo, RamboParams};
    /// use std::sync::Arc;
    ///
    /// let mut index = Rambo::new(RamboParams::flat(8, 3, 1 << 12, 2, 7)).unwrap();
    /// let doc = index.insert_document("genome-A", [7u64, 8, 9]).unwrap();
    ///
    /// // Serialize (format v2 8-byte-aligns word payloads), then re-open
    /// // borrowing the filter words in place — no payload copy.
    /// let buf: Arc<[u8]> = index.to_bytes().unwrap().into();
    /// if let Ok(view) = Rambo::open_view(buf.clone()) {
    ///     assert!(view.is_view() && view.payload_borrows(&buf));
    ///     assert_eq!(view.query_u64(8), vec![doc]); // answers match the copy
    /// } // (an Err means the buffer landed misaligned — fall back to from_bytes)
    /// ```
    ///
    /// # Errors
    /// [`RamboError::Decode`] on any malformed input, on trailing bytes, or
    /// when a word payload is not 8-byte-aligned in memory (fall back to
    /// [`Rambo::from_bytes`], which has no alignment requirement).
    pub fn open_view(buf: Arc<[u8]>) -> Result<Self, RamboError> {
        let (index, used) = Self::open_view_at(&buf, 0)?;
        if used != buf.len() {
            return Err(DecodeError::new("trailing bytes after RAMBO index").into());
        }
        Ok(index)
    }

    /// [`Rambo::open_view`] for an index embedded at byte `offset` of a
    /// larger buffer — the fold-over workflow's "several index versions in
    /// one file" layout. Returns the index and the number of bytes it
    /// occupied, so callers can walk a concatenated sequence.
    ///
    /// # Errors
    /// See [`Rambo::open_view`]; additionally errors when `offset` is out
    /// of range.
    pub fn open_view_at(buf: &Arc<[u8]>, offset: usize) -> Result<(Self, usize), RamboError> {
        let mut slice: &[u8] = buf
            .get(offset..)
            .ok_or_else(|| DecodeError::new("index offset out of range"))?;
        let total = slice.len();
        let prelude = decode_prelude(&mut slice)?;
        let k = prelude.doc_names.len();
        let mut index = skeleton(&prelude);
        // Switch from slice-relative to absolute-cursor parsing: matrix
        // views need their position inside `buf` to borrow the payload.
        let mut pos = offset + (total - slice.len());
        for table in &mut index.tables {
            let assign_end = pos
                .checked_add(4 * k)
                .filter(|&e| e <= buf.len())
                .ok_or_else(|| DecodeError::new("truncated while reading assignment vector"))?;
            let assign: Vec<u32> = buf[pos..assign_end]
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
                .collect();
            pos = assign_end;
            install_assignments(table, assign, prelude.current_buckets)?;
            let matrix = BfuMatrix::decode_view(buf, &mut pos)?;
            check_matrix(&matrix, prelude.params.bfu_bits, prelude.current_buckets)?;
            table.matrix = matrix;
        }
        install_names(&mut index, prelude.doc_names)?;
        Ok((index, pos - offset))
    }

    /// File-backed load: parse the index record at byte `offset` of `file`
    /// reading *only metadata* — the prelude (geometry + document names),
    /// the per-table assignment vectors, and one fixed-size header per
    /// matrix record. Dense word payloads stay on disk and are faulted in
    /// row-aligned blocks through `file`'s shared cache on first probe;
    /// compressed (`RBFR`) tiers decode eagerly (they are small by
    /// construction). Open time is therefore independent of the dense
    /// payload size — the O(metadata) open behind the paper's "170TB on
    /// disk, queried in milliseconds" serving story.
    ///
    /// Cache traffic for every matrix of this index is charged to
    /// `counters` (a serving catalog passes one set per tier). Returns the
    /// index and the number of bytes its record occupied, mirroring
    /// [`Rambo::open_view_at`].
    ///
    /// # Errors
    /// [`RamboError::Decode`] on malformed metadata, out-of-range offsets,
    /// or payloads overrunning the file. Dense payload *words* are not
    /// validated at open (row tails are masked at fault time instead).
    pub fn open_paged_at(
        file: &Arc<PagedFile>,
        offset: u64,
        counters: &Arc<BlockCacheCounters>,
    ) -> Result<(Self, u64), RamboError> {
        if offset > file.len() {
            return Err(DecodeError::new("index offset out of range").into());
        }
        // The prelude is metadata-sized but not fixed-size (document names).
        // Read a growing prefix until it parses or provably cannot: a failed
        // parse of a chunk that already reaches EOF is a real error.
        let mut chunk_len = (64 << 10).min((file.len() - offset) as usize);
        let prelude = loop {
            let chunk = file
                .read_bytes(offset, chunk_len)
                .map_err(|e| DecodeError::new(format!("catalog read: {e}")))?;
            let mut slice = chunk.as_slice();
            match decode_prelude(&mut slice) {
                Ok(p) => break (p, chunk_len - slice.len()),
                Err(e) if offset + chunk_len as u64 >= file.len() => return Err(e),
                Err(_) => chunk_len = (chunk_len * 2).min((file.len() - offset) as usize),
            }
        };
        let (prelude, prelude_len) = prelude;
        let k = prelude.doc_names.len();
        let mut index = skeleton(&prelude);
        let mut pos = offset + prelude_len as u64;
        for table in &mut index.tables {
            let assign_len = 4 * k;
            if pos + assign_len as u64 > file.len() {
                return Err(DecodeError::new("truncated while reading assignment vector").into());
            }
            let bytes = file
                .read_bytes(pos, assign_len)
                .map_err(|e| DecodeError::new(format!("catalog read: {e}")))?;
            let assign: Vec<u32> = bytes
                .chunks_exact(4)
                .map(|c| u32::from_le_bytes(c.try_into().expect("chunk of 4")))
                .collect();
            pos += assign_len as u64;
            install_assignments(table, assign, prelude.current_buckets)?;
            let matrix = BfuMatrix::decode_paged(file, &mut pos, counters)?;
            check_matrix(&matrix, prelude.params.bfu_bits, prelude.current_buckets)?;
            table.matrix = matrix;
        }
        install_names(&mut index, prelude.doc_names)?;
        Ok((index, pos - offset))
    }

    /// True when every table's word payload is a zero-copy view into a
    /// shared buffer (i.e. the index came from [`Rambo::open_view`] and has
    /// not been written to).
    #[must_use]
    pub fn is_view(&self) -> bool {
        self.tables.iter().all(|t| t.matrix.is_view())
    }

    /// Do all matrix word payloads live inside `buf`? The "zero word-payload
    /// copies" assertion for the view load path: an index opened with
    /// [`Rambo::open_view`] answers `true` for its backing buffer, an index
    /// from [`Rambo::from_bytes`] answers `false` for every buffer.
    #[must_use]
    pub fn payload_borrows(&self, buf: &[u8]) -> bool {
        !self.tables.is_empty() && self.tables.iter().all(|t| t.matrix.payload_borrows(buf))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build_sample() -> Rambo {
        let mut r = Rambo::new(RamboParams::flat(8, 3, 1 << 12, 2, 77)).unwrap();
        for d in 0..20 {
            let base = (d as u64) << 16;
            r.insert_document(&format!("doc{d}"), (0..30u64).map(|t| base | t))
                .unwrap();
        }
        r
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let r = build_sample();
        let bytes = r.to_bytes().unwrap();
        let back = Rambo::from_bytes(&bytes).unwrap();
        assert_eq!(r, back);
        // Queries agree, including for absent terms.
        for t in [0u64, 5, (3 << 16) | 2, 0xDEAD] {
            assert_eq!(r.query_u64(t), back.query_u64(t));
        }
    }

    #[test]
    fn roundtrip_after_folding() {
        let mut r = build_sample();
        r.fold_once().unwrap();
        let back = Rambo::from_bytes(&r.to_bytes().unwrap()).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.fold_factor(), 1);
        assert_eq!(back.buckets(), 4);
    }

    #[test]
    fn loaded_index_accepts_new_documents() {
        let r = build_sample();
        let mut back = Rambo::from_bytes(&r.to_bytes().unwrap()).unwrap();
        let d = back.insert_document("new-doc", [0xCAFEu64]).unwrap();
        assert!(back.query_u64(0xCAFE).contains(&d));
        // The resolver was re-derived from the seed: the same name must land
        // in the same buckets as in the original index.
        let mut orig = r.clone();
        let d2 = orig.insert_document("new-doc", [0xCAFEu64]).unwrap();
        for rep in 0..3 {
            assert_eq!(orig.bucket_of(rep, d2), back.bucket_of(rep, d));
        }
    }

    #[test]
    fn rejects_corruption() {
        let r = build_sample();
        let bytes = r.to_bytes().unwrap();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Rambo::from_bytes(&bad).is_err());

        assert!(Rambo::from_bytes(&bytes[..bytes.len() / 2]).is_err());

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Rambo::from_bytes(&trailing).is_err());
    }

    #[test]
    fn rejects_out_of_range_assignment() {
        let r = build_sample();
        let mut bytes = r.to_bytes().unwrap();
        // The first assign word sits right after the names section; find it
        // by re-encoding a modified struct instead of byte surgery: flip an
        // assignment directly in a clone and ensure validation catches it.
        // (Byte-offset surgery would be brittle; we corrupt the u32 that
        // follows the last name, which is the first assignment.)
        let names_len: usize = r
            .document_names()
            .iter()
            .map(|n| 4 + n.len())
            .sum::<usize>();
        let offset = 4 + 2 + 17 + 4 + 8 + 4 + 8 + 4 + 8 + 4 + names_len;
        bytes[offset] = 0xFF; // assignment 0xFF ≥ 8 buckets
        assert!(Rambo::from_bytes(&bytes).is_err());
    }

    #[test]
    fn two_level_roundtrip() {
        let mut r = Rambo::new(RamboParams::two_level(4, 4, 2, 1 << 10, 2, 5)).unwrap();
        r.insert_document("a", [1u64, 2]).unwrap();
        r.insert_document("b", [3u64]).unwrap();
        let back = Rambo::from_bytes(&r.to_bytes().unwrap()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn node_local_shard_roundtrip() {
        // Serving clusters ship each node its shard; the shard must
        // roundtrip with its node identity (tag 2) so the re-derived
        // resolver keeps inserting through the shared router.
        let mut sharded =
            crate::ShardedRambo::new(RamboParams::two_level(3, 8, 2, 1 << 10, 2, 5)).unwrap();
        for d in 0..12u64 {
            sharded
                .ingest_document(&format!("doc{d}"), (0..10).map(|t| d << 16 | t))
                .unwrap();
        }
        for shard in sharded.into_shards() {
            let back = Rambo::from_bytes(&shard.to_bytes().unwrap()).unwrap();
            assert_eq!(shard, back);
            for t in [0u64, 3 << 16 | 1, 0xBEEF] {
                assert_eq!(shard.query_u64(t), back.query_u64(t));
            }
        }
    }

    #[test]
    fn node_local_tag_rejects_out_of_range_node() {
        let mut sharded =
            crate::ShardedRambo::new(RamboParams::two_level(2, 8, 2, 1 << 10, 2, 5)).unwrap();
        sharded.ingest_document("a", [1u64]).unwrap();
        let shard = sharded.into_shards().remove(0);
        let mut bytes = shard.to_bytes().unwrap();
        // partition block: tag at offset 6, local_buckets, nodes, then node.
        bytes[7 + 16..7 + 24].copy_from_slice(&9u64.to_le_bytes());
        assert!(Rambo::from_bytes(&bytes).is_err(), "node 9 of 2 must fail");
    }

    #[test]
    fn open_view_is_zero_copy_and_equal() {
        let r = build_sample();
        let buf: Arc<[u8]> = r.to_bytes().unwrap().into();
        if !(buf.as_ptr() as usize).is_multiple_of(8) {
            return; // 32-bit Arc layouts may misalign the payload; the
                    // loader correctly errors there (see store.rs tests)
        }
        let view = Rambo::open_view(buf.clone()).unwrap();
        assert!(view.is_view());
        assert!(
            view.payload_borrows(&buf),
            "view must borrow the input buffer, not copy it"
        );
        assert_eq!(view, r);
        // And the copying path never borrows.
        let owned = Rambo::from_bytes(&buf).unwrap();
        assert!(!owned.is_view());
        assert!(!owned.payload_borrows(&buf));
        for t in [0u64, 5, (3 << 16) | 2, 0xBEEF] {
            assert_eq!(view.query_u64(t), r.query_u64(t));
        }
    }

    #[test]
    fn open_view_rejects_corruption_and_trailing() {
        let r = build_sample();
        let bytes = r.to_bytes().unwrap();

        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(Rambo::open_view(bad.into()).is_err());

        let truncated: Arc<[u8]> = bytes[..bytes.len() / 2].to_vec().into();
        assert!(Rambo::open_view(truncated).is_err());

        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(Rambo::open_view(trailing.into()).is_err());
    }

    #[test]
    fn open_view_at_walks_concatenated_versions() {
        // The fold-over workflow: the full index and a folded version in one
        // buffer, both opened zero-copy from their offsets.
        let full = build_sample();
        let folded = full.folded(1).unwrap();
        let mut buf = full.to_bytes().unwrap();
        let second_at = buf.len();
        buf.extend(folded.to_bytes().unwrap());
        let arc: Arc<[u8]> = buf.into();
        if !(arc.as_ptr() as usize).is_multiple_of(8) {
            return; // 32-bit Arc layouts may misalign the payload; the
                    // loader correctly errors there (see store.rs tests)
        }

        let (v_full, used) = Rambo::open_view_at(&arc, 0).unwrap();
        assert_eq!(used, second_at);
        let (v_folded, used2) = Rambo::open_view_at(&arc, second_at).unwrap();
        assert_eq!(second_at + used2, arc.len());
        assert_eq!(v_full, full);
        assert_eq!(v_folded, folded);
        assert!(v_full.payload_borrows(&arc) && v_folded.payload_borrows(&arc));
    }

    #[test]
    fn open_paged_matches_in_memory_load() {
        let r = build_sample();
        let bytes = r.to_bytes().unwrap();
        let path = std::env::temp_dir().join(format!(
            "rambo-open-paged-{}-{}.idx",
            std::process::id(),
            bytes.len()
        ));
        std::fs::write(&path, &bytes).unwrap();
        let file = PagedFile::open(&path, 1 << 20).unwrap();
        let counters = Arc::new(BlockCacheCounters::new());
        let (paged, used) = Rambo::open_paged_at(&file, 0, &counters).unwrap();
        assert_eq!(used, bytes.len() as u64);
        assert!(paged.tables_paged(), "payloads must stay on disk");
        // No payload block faulted yet: the open read metadata only.
        assert_eq!(counters.snapshot().misses, 0);
        for t in [0u64, 5, (3 << 16) | 2, 0xBEEF] {
            assert_eq!(paged.query_u64(t), r.query_u64(t), "term {t}");
        }
        let snap = counters.snapshot();
        assert!(snap.misses > 0, "queries must fault payload blocks");
        assert_eq!(paged, r, "paged index is logically the source");
        // Truncated file: the open itself fails on the overrunning payload.
        let cut = bytes.len() / 2;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let file2 = PagedFile::open(&path, 1 << 20).unwrap();
        assert!(Rambo::open_paged_at(&file2, 0, &counters).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn viewed_index_promotes_on_mutation() {
        let r = build_sample();
        let buf: Arc<[u8]> = r.to_bytes().unwrap().into();
        if !(buf.as_ptr() as usize).is_multiple_of(8) {
            return; // 32-bit Arc layouts may misalign the payload; the
                    // loader correctly errors there (see store.rs tests)
        }
        let mut view = Rambo::open_view(buf).unwrap();
        let d = view.insert_document("late", [0xABCDu64]).unwrap();
        assert!(!view.is_view(), "writes must promote the touched tables");
        assert!(view.query_u64(0xABCD).contains(&d));
    }

    #[test]
    fn viewed_index_folds() {
        let r = build_sample();
        let buf: Arc<[u8]> = r.to_bytes().unwrap().into();
        if !(buf.as_ptr() as usize).is_multiple_of(8) {
            return; // 32-bit Arc layouts may misalign the payload; the
                    // loader correctly errors there (see store.rs tests)
        }
        let mut view = Rambo::open_view(buf).unwrap();
        view.fold_once().unwrap();
        assert_eq!(view, r.folded(1).unwrap());
    }
}
