//! # RAMBO — Repeated And Merged BloOm Filter
//!
//! Reproduction of the index from *"Fast Processing and Querying of 170TB of
//! Genomics Data via a Repeated And Merged BloOm Filter (RAMBO)"* (Gupta et
//! al., SIGMOD 2021).
//!
//! ## The problem
//!
//! Multi-set membership: given `K` documents `S = {S₁ … S_K}` (each a set of
//! terms — 31-mers for genomes, words for text) and a query term `q`, return
//! every `Sᵢ` containing `q`, with **zero false negatives** and a small
//! false-positive rate. BIGSI/COBS keep one Bloom filter per document and
//! probe all `K` at query time; sequence Bloom trees get `log K` best-case
//! but are sequential and memory-hungry.
//!
//! ## The idea (paper §3)
//!
//! RAMBO is a Count-Min-Sketch arrangement of Bloom filters. The documents
//! are partitioned into `B ≪ K` groups by a 2-universal hash of the document
//! *identity*; each group is compressed into one **Bloom Filter for the
//! Union** (BFU). This is repeated `R` times with independent partition
//! hashes. A query probes the `B×R` BFUs, takes the union of document sets
//! within each repetition and the intersection across repetitions. Each
//! repetition cuts the candidate pool by `1/B` in expectation, so
//! `R = O(log K − log δ)` repetitions suffice (Theorem 4.3), giving expected
//! query time `O(√K (log K − log δ))` (Theorem 4.5).
//!
//! ## What this crate provides
//!
//! * [`Rambo`] — the index: Algorithm 1 insertion, Algorithm 2 querying,
//!   plain and **RAMBO+** sparse evaluation ([`QueryMode`]), large-sequence
//!   queries with first-FALSE early exit (§3.3.1), and §5.3 **fold-over**
//!   (halve `B` by OR-ing filter halves, trading memory for FPR).
//! * [`Rambo::insert_document_batch`]/[`QueryBatch`] — the batch-parallel
//!   execution engine: deduplicated hash-once-per-repetition ingestion with
//!   row-grouped writes fanned over scoped threads, and shared-scratch batch
//!   querying with LRU-bounded per-term bucket-mask memoization.
//! * [`IngestPipeline`] — pipelined, shard-parallel construction: a
//!   bounded-queue pipeline overlapping parse+hash of document *n+1* with
//!   the bucket writes of document *n* (hash/write split via
//!   [`HashPlan`]/[`Rambo::apply_hashed`]), and document-sharded parallel
//!   builds whose partial indexes fold into the final structure
//!   bit-identically (§5.3's smart parallelism at document granularity).
//! * [`Rambo::open_view`]/[`Rambo::open_view_at`] — zero-copy index loads:
//!   the v2 serialization format 8-byte-aligns every matrix word payload, so
//!   a serialized index (or several fold-over versions concatenated in one
//!   file) is re-opened by *borrowing* its words in place from an
//!   `Arc<[u8]>` — no payload copy, copy-on-write on mutation. The probe
//!   hot path runs through the fused word-parallel kernels of
//!   [`rambo_bitvec::kernel`] (re-exported as [`kernel`]), which dispatch
//!   at runtime between a portable scalar backend and AVX2 variants
//!   selected via `is_x86_feature_detected!` — see [`kernel::Backend`].
//! * [`RamboBuilder`]/[`RamboParams`] — parameter selection following §4/§5.1
//!   (`B ≈ √(KV/η)`, `R ≈ log K − log δ`, BFU sizing by pooled cardinality).
//! * [`sharded`] — the distributed construction of §5.3: two-level hash
//!   routing over simulated nodes, embarrassingly parallel ingestion, and
//!   lossless stacking into a monolithic index.
//! * [`theory`] — the paper's analytic results (Lemmas 4.1, 4.2, 4.4, 4.6,
//!   Theorems 4.3, 4.5) as executable formulas, cross-checked against
//!   measurements in the benches.
//!
//! ## Quick start
//!
//! ```
//! use rambo_core::{Rambo, RamboBuilder};
//!
//! // 100 documents, ~1000 terms each, target per-BFU FPR 1%.
//! let mut index = RamboBuilder::new()
//!     .expected_documents(100)
//!     .expected_terms_per_doc(1000)
//!     .target_fpr(0.01)
//!     .seed(7)
//!     .build()
//!     .unwrap();
//!
//! let doc = index.add_document("genome-A").unwrap();
//! index.insert_term_u64(doc, 0xAC67).unwrap(); // a packed k-mer
//! let hits = index.query_u64(0xAC67);
//! assert_eq!(hits, vec![doc]); // zero false negatives
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod builder;
mod error;
mod fold;
mod generations;
mod index;
mod matrix;
mod params;
mod partition;
pub mod pipeline;
mod query;
mod serialize;
pub mod sharded;
pub mod theory;

pub use batch::{default_threads, QueryBatch};
pub use builder::RamboBuilder;
pub use error::RamboError;
pub use fold::TierCompression;
pub use generations::{
    GenerationConfig, GenerationInfo, GenerationalIndex, MergeJob, SealedGeneration,
};
pub use index::{DocId, Rambo};
pub use params::RamboParams;
pub use partition::PartitionScheme;
pub use pipeline::{HashPlan, HashedDoc, IngestPipeline, PipelineObserver, PipelineReport};
pub use query::{canonical_query_key, QueryContext, QueryMode};
pub use rambo_bitvec::kernel;
pub use sharded::{build_sharded_parallel, ShardedRambo};
