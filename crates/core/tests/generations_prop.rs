//! Property tests for the mutable generational index.
//!
//! The load-bearing claim of the LSM-style design is *bit-identity*: at
//! every point of any insert / seal / merge interleaving, a
//! [`GenerationalIndex`] answers every query exactly like a monolithic
//! [`Rambo`] rebuilt from scratch over the same documents — sealing and
//! merging are representation changes, never answer changes. These tests
//! fuzz the interleaving (including degenerate generation configs that
//! seal on every insert or merge everything into one tier) and compare
//! against the from-scratch oracle after every operation.

use proptest::prelude::*;
use rambo_core::{
    GenerationConfig, GenerationalIndex, QueryContext, QueryMode, Rambo, RamboParams,
};

/// A random archive: documents with disjoint private terms plus a shared
/// pool so multiplicity V > 1 occurs.
#[derive(Debug, Clone)]
struct Archive {
    docs: Vec<(String, Vec<u64>)>,
}

fn archive_strategy(max_docs: usize) -> impl Strategy<Value = Archive> {
    (2..max_docs, 1usize..24, 0usize..8).prop_map(|(k, private, shared)| {
        let docs = (0..k)
            .map(|d| {
                let base = (d as u64) << 32;
                let mut terms: Vec<u64> = (0..private as u64).map(|t| base | t).collect();
                terms.extend((0..shared as u64).map(|s| 0xABCD_0000 + (s % 5)));
                terms.dedup();
                (format!("doc-{d}"), terms)
            })
            .collect();
        Archive { docs }
    })
}

/// The oracle: a monolithic index built from scratch over a doc prefix.
fn oracle(params: RamboParams, docs: &[(String, Vec<u64>)]) -> Rambo {
    let mut r = Rambo::new(params).unwrap();
    for (name, terms) in docs {
        r.insert_document(name, terms.iter().copied()).unwrap();
    }
    r
}

/// Every probe term the archive mentions plus a few misses.
fn probe_set(archive: &Archive) -> Vec<u64> {
    let mut probes: Vec<u64> = archive
        .docs
        .iter()
        .flat_map(|(_, terms)| terms.iter().copied())
        .collect();
    probes.extend([0u64, u64::MAX, 0xFEED_F00D]);
    probes.sort_unstable();
    probes.dedup();
    probes
}

fn assert_parity(live: &GenerationalIndex, mono: &Rambo, probes: &[u64]) {
    let mut ctx_live = QueryContext::new();
    let mut ctx_mono = QueryContext::new();
    for &t in probes {
        for mode in [QueryMode::Full, QueryMode::Sparse] {
            let a = live.query_terms_with(&[t], mode, &mut ctx_live);
            let b = mono.query_terms_with(&[t], mode, &mut ctx_mono);
            prop_assert_eq!(
                &a,
                &b,
                "single-term divergence on {:#x} ({:?}, {} gens)",
                t,
                mode,
                live.num_generations()
            );
        }
    }
    // Multi-term AND queries stress the OR-first evaluation order: the
    // per-row OR across components must happen before the η-AND.
    for pair in probes.chunks(2) {
        let a = live.query_terms_with(pair, QueryMode::Full, &mut ctx_live);
        let b = mono.query_terms_with(pair, QueryMode::Full, &mut ctx_mono);
        prop_assert_eq!(&a, &b, "multi-term divergence on {:x?}", pair);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The tentpole invariant: for any archive, any geometry seed, any
    /// generation config, and any fuzzed schedule of seals and merges
    /// interleaved with the inserts, queries through the generational
    /// index equal the from-scratch monolith — checked after *every*
    /// insert and after every maintenance step.
    #[test]
    fn interleaved_inserts_seals_and_merges_match_monolith(
        archive in archive_strategy(16),
        cap in 1usize..5,
        tier_growth in 1u64..4,
        max_generations in 1usize..4,
        seed in any::<u64>(),
        // One schedule byte per insert: bit 0 = force a seal after it,
        // bit 1 = run one merge step, bit 2 = run maintenance to quiescence.
        schedule in proptest::collection::vec(0u8..8, 16),
    ) {
        let params = RamboParams::flat(8, 3, 1 << 10, 2, seed);
        let config = GenerationConfig {
            memtable_fpr_budget: 1.0, // doc cap drives auto-seals
            memtable_max_docs: cap,
            tier_growth,
            max_generations,
        };
        let mut live = GenerationalIndex::new(params, config).unwrap();
        let probes = probe_set(&archive);
        for (i, (name, terms)) in archive.docs.iter().enumerate() {
            let id = live.insert_document(name, terms).unwrap();
            prop_assert_eq!(id, i as u32, "global ids must be dense and stable");
            let step = schedule[i % schedule.len()];
            if step & 1 != 0 {
                live.seal_memtable().unwrap();
            }
            if step & 2 != 0 {
                live.merge_once().unwrap();
            }
            if step & 4 != 0 {
                live.maintain().unwrap();
            }
            let mono = oracle(params, &archive.docs[..=i]);
            assert_parity(&live, &mono, &probes);
            prop_assert_eq!(
                live.to_monolithic().unwrap(),
                mono,
                "collapsed index must equal the from-scratch build"
            );
        }
        prop_assert_eq!(live.num_documents(), archive.docs.len());
        for (i, (name, _)) in archive.docs.iter().enumerate() {
            prop_assert_eq!(live.document_id(name), Some(i as u32));
            prop_assert_eq!(live.document_name(i as u32), name.as_str());
        }
    }

    /// The merge policy must respect its bound for any config: after
    /// maintenance reaches quiescence, at most `max_generations` immutable
    /// generations remain.
    #[test]
    fn maintenance_bounds_generation_count(
        archive in archive_strategy(24),
        cap in 1usize..4,
        tier_growth in 1u64..4,
        max_generations in 1usize..4,
        seed in any::<u64>(),
    ) {
        let params = RamboParams::flat(8, 2, 1 << 10, 2, seed);
        let config = GenerationConfig {
            memtable_fpr_budget: 1.0,
            memtable_max_docs: cap,
            tier_growth,
            max_generations,
        };
        let mut live = GenerationalIndex::new(params, config).unwrap();
        for (name, terms) in &archive.docs {
            live.insert_document(name, terms).unwrap();
            live.maintain().unwrap();
            prop_assert!(
                live.num_generations() <= max_generations,
                "{} generations exceeds the cap {}",
                live.num_generations(),
                max_generations
            );
        }
        // Ids survive the full churn.
        for (i, (name, _)) in archive.docs.iter().enumerate() {
            prop_assert_eq!(live.document_id(name), Some(i as u32));
        }
    }

    /// Zero false negatives carries over verbatim: a document is returned
    /// for every term it contains, no matter how the generations are laid
    /// out when the query lands.
    #[test]
    fn zero_false_negatives_across_generations(
        archive in archive_strategy(16),
        cap in 1usize..4,
        seed in any::<u64>(),
    ) {
        let params = RamboParams::flat(8, 3, 1 << 10, 2, seed);
        let config = GenerationConfig {
            memtable_max_docs: cap,
            ..GenerationConfig::default()
        };
        let mut live = GenerationalIndex::new(params, config).unwrap();
        for (name, terms) in &archive.docs {
            live.insert_document(name, terms).unwrap();
        }
        live.maintain().unwrap();
        let mut ctx = QueryContext::new();
        for (d, (_, terms)) in archive.docs.iter().enumerate() {
            for &t in terms {
                for mode in [QueryMode::Full, QueryMode::Sparse] {
                    prop_assert!(
                        live.query_terms_with(&[t], mode, &mut ctx).contains(&(d as u32)),
                        "false negative: doc {d} missing for {t:#x} ({mode:?})"
                    );
                }
            }
        }
    }
}
