//! Property-based tests for the RAMBO index invariants.
//!
//! These pin the paper's §4 claims under randomized workloads:
//! zero false negatives (always), RAMBO+ ≡ RAMBO (sparse evaluation is an
//! optimization, not an approximation), fold-over soundness, and the
//! losslessness of sharded construction.

use proptest::prelude::*;
use rambo_core::{
    build_sharded_parallel, IngestPipeline, QueryBatch, QueryContext, QueryMode, Rambo, RamboParams,
};
use std::sync::Arc;

/// A random archive: documents with disjoint private terms plus a shared
/// pool so multiplicity V > 1 occurs.
#[derive(Debug, Clone)]
struct Archive {
    docs: Vec<(String, Vec<u64>)>,
}

fn archive_strategy(max_docs: usize) -> impl Strategy<Value = Archive> {
    (2..max_docs, 1usize..40, 0usize..10).prop_map(|(k, private, shared)| {
        let docs = (0..k)
            .map(|d| {
                let base = (d as u64) << 32;
                let mut terms: Vec<u64> = (0..private as u64).map(|t| base | t).collect();
                // Shared terms drawn from a small pool → realistic V.
                terms.extend((0..shared as u64).map(|s| 0xABCD_0000 + (s % 5)));
                terms.dedup();
                (format!("doc-{d}"), terms)
            })
            .collect();
        Archive { docs }
    })
}

fn build(params: RamboParams, archive: &Archive) -> Rambo {
    let mut r = Rambo::new(params).unwrap();
    for (name, terms) in &archive.docs {
        r.insert_document(name, terms.iter().copied()).unwrap();
    }
    r
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// §4.1: "RAMBO cannot report false negatives" — for any geometry and
    /// any archive, every document is returned for every term it contains.
    #[test]
    fn zero_false_negatives(
        archive in archive_strategy(20),
        b in 2u64..20,
        r in 1usize..5,
        seed in any::<u64>(),
    ) {
        let idx = build(RamboParams::flat(b, r, 1 << 12, 2, seed), &archive);
        for (d, (_, terms)) in archive.docs.iter().enumerate() {
            for &t in terms {
                prop_assert!(
                    idx.query_u64(t).contains(&(d as u32)),
                    "doc {d} missing for term {t:#x} (B={b}, R={r})"
                );
            }
        }
    }

    /// RAMBO+ sparse evaluation returns exactly the full evaluation's result.
    #[test]
    fn sparse_equals_full(
        archive in archive_strategy(16),
        b in 2u64..16,
        r in 1usize..5,
        seed in any::<u64>(),
        probes in proptest::collection::vec(any::<u64>(), 1..30),
    ) {
        let idx = build(RamboParams::flat(b, r, 1 << 11, 2, seed), &archive);
        // Mix of absent terms (random u64s) and present terms.
        let mut all_probes = probes;
        all_probes.extend(archive.docs.iter().flat_map(|(_, ts)| ts.iter().take(2).copied()));
        for t in all_probes {
            prop_assert_eq!(
                idx.query_terms_u64(&[t], QueryMode::Full),
                idx.query_terms_u64(&[t], QueryMode::Sparse),
                "modes disagree on {:#x}", t
            );
        }
    }

    /// Folding never loses a document (no false negatives survive folding)
    /// and result sets only grow (false positives may be added, never
    /// removed).
    #[test]
    fn folding_is_monotone(
        archive in archive_strategy(14),
        seed in any::<u64>(),
    ) {
        let idx = build(RamboParams::flat(16, 2, 1 << 12, 2, seed), &archive);
        let folded = idx.folded(2).unwrap();
        prop_assert_eq!(folded.buckets(), 4);
        for (_, terms) in &archive.docs {
            for &t in terms.iter().take(3) {
                let before = idx.query_u64(t);
                let after = folded.query_u64(t);
                for d in &before {
                    prop_assert!(after.contains(d), "fold dropped doc {d} for {t:#x}");
                }
            }
        }
    }

    /// Sharded build + stack ≡ monolithic build with the same seed, at the
    /// level of query answers (name sets), for any node layout.
    #[test]
    fn sharded_stack_answers_match_monolithic(
        archive in archive_strategy(14),
        nodes in 2u64..5,
        local_b in 2u64..5,
        seed in any::<u64>(),
    ) {
        let params = RamboParams::two_level(nodes, local_b, 2, 1 << 11, 2, seed);
        let stacked = build_sharded_parallel(params, archive.docs.clone()).unwrap();
        let mono = build(params, &archive);
        for (_, terms) in &archive.docs {
            for &t in terms.iter().take(2) {
                let mut a: Vec<&str> = stacked.resolve_names(&stacked.query_u64(t));
                let mut b: Vec<&str> = mono.resolve_names(&mono.query_u64(t));
                a.sort_unstable();
                b.sort_unstable();
                prop_assert_eq!(a, b, "answers diverge on {:#x}", t);
            }
        }
    }

    /// Serialization roundtrips the exact structure for random archives and
    /// fold levels.
    #[test]
    fn serialization_roundtrip(
        archive in archive_strategy(12),
        folds in 0u32..2,
        seed in any::<u64>(),
    ) {
        let mut idx = build(RamboParams::flat(8, 2, 1 << 10, 2, seed), &archive);
        idx.fold_times(folds).unwrap();
        let back = Rambo::from_bytes(&idx.to_bytes().unwrap()).unwrap();
        prop_assert_eq!(idx, back);
    }

    /// Batch insertion ([`Rambo::insert_document_batch_with`]) produces a
    /// **bit-identical** index to term-at-a-time insertion — full structural
    /// equality via `PartialEq`, for any geometry, any archive (duplicates
    /// included), and any thread budget.
    #[test]
    fn batch_insertion_bit_identical_to_term_at_a_time(
        archive in archive_strategy(16),
        b in 2u64..16,
        r in 1usize..5,
        seed in any::<u64>(),
        threads in 1usize..5,
    ) {
        let params = RamboParams::flat(b, r, 1 << 11, 2, seed);
        let mut serial = Rambo::new(params).unwrap();
        let mut batch = Rambo::new(params).unwrap();
        for (name, terms) in &archive.docs {
            let d = serial.add_document(name).unwrap();
            for &t in terms {
                serial.insert_term_u64(d, t).unwrap();
            }
            batch.insert_document_batch_with(name, terms, threads).unwrap();
        }
        prop_assert_eq!(&serial, &batch, "threads = {}", threads);
        prop_assert_eq!(serial.total_inserts(), batch.total_inserts());
    }

    /// [`QueryBatch`] returns exactly what per-call
    /// [`Rambo::query_terms_with`] returns, in both evaluation modes, for
    /// single- and multi-term queries with repeats (memoization hits).
    #[test]
    fn query_batch_equals_per_call(
        archive in archive_strategy(14),
        seed in any::<u64>(),
        probes in proptest::collection::vec(any::<u64>(), 1..20),
    ) {
        let idx = build(RamboParams::flat(8, 3, 1 << 11, 2, seed), &archive);
        let mut queries: Vec<Vec<u64>> = archive
            .docs
            .iter()
            .map(|(_, ts)| ts.iter().take(3).copied().collect())
            .collect();
        queries.extend(probes.into_iter().map(|t| vec![t]));
        queries.push(queries[0].clone()); // repeated query → memo hit
        for mode in [QueryMode::Full, QueryMode::Sparse] {
            let mut ctx = QueryContext::new();
            let expected: Vec<_> = queries
                .iter()
                .map(|q| idx.query_terms_with(q, mode, &mut ctx))
                .collect();
            let mut qb = QueryBatch::new(&idx);
            prop_assert_eq!(qb.run(&queries, mode), expected, "mode {:?}", mode);
        }
    }

    /// The zero-copy load path is bit-identical to the copying one: for any
    /// archive, geometry and fold level, `open_view` answers every query
    /// (Full and Sparse, present and absent terms) exactly like the
    /// `from_bytes` copy — while actually borrowing the input buffer.
    #[test]
    fn open_view_equals_from_bytes(
        archive in archive_strategy(12),
        b in 2u64..12,
        r in 1usize..4,
        folds in 0u32..2,
        seed in any::<u64>(),
        probes in proptest::collection::vec(any::<u64>(), 1..15),
    ) {
        let mut idx = build(RamboParams::flat(b << folds, r, 1 << 10, 2, seed), &archive);
        idx.fold_times(folds).unwrap();
        let buf: Arc<[u8]> = idx.to_bytes().unwrap().into();
        if !(buf.as_ptr() as usize).is_multiple_of(8) {
            continue; // 32-bit Arc layouts may misalign the payload; the
                      // loader correctly errors there (see store.rs tests)
        }
        let owned = Rambo::from_bytes(&buf).unwrap();
        let view = Rambo::open_view(buf.clone()).unwrap();
        prop_assert!(view.is_view());
        prop_assert!(view.payload_borrows(&buf), "view must borrow, not copy");
        prop_assert!(!owned.payload_borrows(&buf));
        prop_assert_eq!(&view, &owned);
        let mut all_probes = probes;
        all_probes.extend(archive.docs.iter().flat_map(|(_, ts)| ts.iter().take(2).copied()));
        let mut ctx_o = QueryContext::new();
        let mut ctx_v = QueryContext::new();
        for &t in &all_probes {
            for mode in [QueryMode::Full, QueryMode::Sparse] {
                prop_assert_eq!(
                    owned.query_terms_with(&[t], mode, &mut ctx_o),
                    view.query_terms_with(&[t], mode, &mut ctx_v),
                    "mode {:?} term {:#x}", mode, t
                );
            }
        }
        // Multi-term queries too.
        let q: Vec<u64> = all_probes.iter().take(4).copied().collect();
        prop_assert_eq!(
            owned.query_terms_with(&q, QueryMode::Full, &mut ctx_o),
            view.query_terms_with(&q, QueryMode::Full, &mut ctx_v)
        );
    }

    /// Fuzz the view loader with corrupted buffers: truncations at every
    /// depth, shifted (misaligned) payloads, and random byte flips must all
    /// return errors or decode to a structurally valid index — never panic
    /// and never exhibit UB (the suite runs under the normal test harness,
    /// so a crash here is a failure).
    #[test]
    fn open_view_fuzz_returns_errors_not_ub(
        archive in archive_strategy(8),
        seed in any::<u64>(),
        cut in any::<proptest::sample::Index>(),
        flip_at in any::<proptest::sample::Index>(),
        flip_to in any::<u8>(),
        shift in 1usize..8,
    ) {
        let idx = build(RamboParams::flat(6, 2, 1 << 9, 2, seed), &archive);
        let bytes = idx.to_bytes().unwrap();

        // Truncation at an arbitrary depth.
        let cut_len = cut.index(bytes.len());
        let truncated: Arc<[u8]> = bytes[..cut_len].to_vec().into();
        prop_assert!(Rambo::open_view(truncated).is_err());

        // Shifted buffer: everything (including word payloads) lands at the
        // wrong offset; must error (bad magic or misalignment), not crash.
        let mut shifted = vec![0u8; shift];
        shifted.extend_from_slice(&bytes);
        let _ = Rambo::open_view(shifted.clone().into());
        let arc: Arc<[u8]> = shifted.into();
        let _ = Rambo::open_view_at(&arc, shift);

        // Random single-byte corruption: either an error or a valid decode
        // (flips inside the word payload or a name are legal content).
        let mut flipped = bytes.clone();
        let at = flip_at.index(flipped.len());
        flipped[at] = flip_to;
        if let Ok(view) = Rambo::open_view(flipped.into()) {
            // Whatever decoded must be internally consistent enough to query.
            let _ = view.query_u64(0xF00D);
        }
    }

    /// Bounded mask memos answer exactly like unbounded evaluation under
    /// random capacities and query streams with repeats (eviction churn).
    #[test]
    fn bounded_query_batch_equals_per_call(
        archive in archive_strategy(12),
        seed in any::<u64>(),
        capacity in 1usize..6,
        probes in proptest::collection::vec(any::<u64>(), 1..15),
    ) {
        let idx = build(RamboParams::flat(8, 3, 1 << 10, 2, seed), &archive);
        let mut queries: Vec<Vec<u64>> = archive
            .docs
            .iter()
            .map(|(_, ts)| ts.iter().take(3).copied().collect())
            .collect();
        queries.extend(probes.into_iter().map(|t| vec![t]));
        queries.push(queries[0].clone()); // repeat → memo hit or re-probe
        let mut ctx = QueryContext::new();
        let expected: Vec<_> = queries
            .iter()
            .map(|q| idx.query_terms_with(q, QueryMode::Full, &mut ctx))
            .collect();
        let mut qb = QueryBatch::with_mask_capacity(&idx, capacity);
        prop_assert_eq!(qb.run(&queries, QueryMode::Full), expected);
        prop_assert!(qb.memoized_terms() <= capacity, "capacity must bound the memo");
    }

    /// Fold/shard interplay: [`rambo_core::ShardedRambo::stack`] followed
    /// by `fold_once` is **bit-identical** to folding the equivalent
    /// monolithic two-level build with the same seed. Fold-over OR-s bucket
    /// `b` with `b + B/2`; stacking places node `n`'s buckets at
    /// `n·b_local`; the two compose only because stacking reproduces the
    /// monolithic layout exactly — this pins that composition (§5.3's
    /// "preserves all the mathematical properties" claim, one step further
    /// than the stack ≡ monolithic test in the sharded module).
    #[test]
    fn stack_then_fold_equals_monolithic_fold(
        archive in archive_strategy(24),
        nodes in 2u64..5,
        local in 2u64..6,
        folds in 1u32..3,
        seed in any::<u64>(),
    ) {
        let total = nodes * local;
        // Folding `folds` times needs divisibility and ≥ 4 buckets at every
        // intermediate step.
        prop_assume!(total.is_multiple_of(1 << folds) && (total >> folds) >= 2 && total >= 4);
        let p = RamboParams::two_level(nodes, local, 2, 1 << 10, 2, seed);

        // Sharded: route, ingest per node, stack.
        let mut sharded = rambo_core::ShardedRambo::new(p).unwrap();
        let mut by_node: Vec<Vec<&(String, Vec<u64>)>> = vec![Vec::new(); nodes as usize];
        for doc in &archive.docs {
            by_node[sharded.route(&doc.0) as usize].push(doc);
        }
        for (name, terms) in &archive.docs {
            sharded.ingest_document(name, terms.iter().copied()).unwrap();
        }
        let mut stacked = sharded.stack().unwrap();

        // Monolithic reference, inserted in node-major order so document ids
        // align with the stacked renumbering.
        let mut mono = Rambo::new(p).unwrap();
        for node_docs in by_node {
            for (name, terms) in node_docs {
                mono.insert_document(name, terms.iter().copied()).unwrap();
            }
        }
        prop_assert_eq!(&stacked, &mono, "stacking must be lossless pre-fold");

        stacked.fold_times(folds).unwrap();
        mono.fold_times(folds).unwrap();
        prop_assert_eq!(&stacked, &mono, "fold after stack must equal monolithic fold");

        // And the folded index still has zero false negatives.
        for (d, (_, terms)) in archive.docs.iter().take(4).enumerate() {
            let id = stacked.document_id(&archive.docs[d].0).unwrap();
            if let Some(&t) = terms.first() {
                prop_assert!(stacked.query_u64(t).contains(&id));
            }
        }
    }

    /// Pipelined ingestion ([`IngestPipeline::ingest`]) is **bit-identical**
    /// to the sequential batch build — full structural equality — for any
    /// geometry, any archive, any queue depth and any hash-pool width
    /// (including the re-sequencing writer path).
    #[test]
    fn pipelined_build_bit_identical_to_sequential(
        archive in archive_strategy(16),
        b in 2u64..16,
        r in 1usize..5,
        seed in any::<u64>(),
        depth in 1usize..6,
        workers in 1usize..4,
    ) {
        let params = RamboParams::flat(b, r, 1 << 11, 2, seed);
        let reference = build(params, &archive);
        let (piped, report) = IngestPipeline::new()
            .queue_depth(depth)
            .hash_workers(workers)
            .build(params, archive.docs.iter().cloned())
            .unwrap();
        prop_assert_eq!(&reference, &piped, "depth = {}, workers = {}", depth, workers);
        prop_assert_eq!(reference.total_inserts(), piped.total_inserts());
        prop_assert_eq!(report.docs as usize, archive.docs.len());
    }

    /// Document-sharded builds ([`IngestPipeline::build_sharded`]) fold
    /// their partial indexes into a structure **bit-identical** to the
    /// monolithic sequential build, for fuzzed shard counts — including
    /// more shards than documents.
    #[test]
    fn sharded_build_then_fold_bit_identical_to_monolithic(
        archive in archive_strategy(16),
        b in 2u64..16,
        r in 1usize..5,
        seed in any::<u64>(),
        shards in 1usize..9,
    ) {
        let params = RamboParams::flat(b, r, 1 << 11, 2, seed);
        let reference = build(params, &archive);
        let (built, report) = IngestPipeline::new()
            .build_sharded(params, &archive.docs, shards)
            .unwrap();
        prop_assert_eq!(&reference, &built, "shards = {}", shards);
        prop_assert_eq!(reference.total_inserts(), built.total_inserts());
        prop_assert_eq!(report.shards as usize, shards);
    }

    /// RRR-compressed storage is lossless: for any archive, geometry and
    /// fold level, compressing every table answers each query (Full and
    /// Sparse, present and absent terms) **bit-identically** to the dense
    /// original — and the compressed index round-trips through v2
    /// serialization back to logical equality.
    #[test]
    fn rrr_compressed_index_equals_dense(
        archive in archive_strategy(12),
        b in 2u64..12,
        r in 1usize..4,
        folds in 0u32..2,
        seed in any::<u64>(),
        probes in proptest::collection::vec(any::<u64>(), 1..15),
    ) {
        let mut dense = build(RamboParams::flat(b << folds, r, 1 << 10, 2, seed), &archive);
        dense.fold_times(folds).unwrap();
        let mut compressed = dense.clone();
        compressed.compress_to_rrr();
        prop_assert!(compressed.is_compressed());
        prop_assert_eq!(&compressed, &dense, "logical equality across backends");

        let mut all_probes = probes;
        all_probes.extend(archive.docs.iter().flat_map(|(_, ts)| ts.iter().take(2).copied()));
        let mut ctx_d = QueryContext::new();
        let mut ctx_c = QueryContext::new();
        for &t in &all_probes {
            for mode in [QueryMode::Full, QueryMode::Sparse] {
                prop_assert_eq!(
                    dense.query_terms_with(&[t], mode, &mut ctx_d),
                    compressed.query_terms_with(&[t], mode, &mut ctx_c),
                    "mode {:?} term {:#x}", mode, t
                );
            }
        }
        let q: Vec<u64> = all_probes.iter().take(4).copied().collect();
        prop_assert_eq!(
            dense.query_terms_with(&q, QueryMode::Full, &mut ctx_d),
            compressed.query_terms_with(&q, QueryMode::Full, &mut ctx_c)
        );

        // v2 roundtrip of the compressed form decodes back to equality.
        let back = Rambo::from_bytes(&compressed.to_bytes().unwrap()).unwrap();
        prop_assert_eq!(&back, &dense);
    }

    /// The paged (file-backed) load path answers every query exactly like
    /// the in-memory copy, for fuzzed archives, geometries and fold levels:
    /// block-cache faulting may never change a bit of any result.
    #[test]
    fn paged_load_equals_in_memory(
        archive in archive_strategy(10),
        b in 2u64..10,
        r in 1usize..4,
        folds in 0u32..2,
        seed in any::<u64>(),
        probes in proptest::collection::vec(any::<u64>(), 1..10),
    ) {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static CASE: AtomicUsize = AtomicUsize::new(0);

        let mut idx = build(RamboParams::flat(b << folds, r, 1 << 10, 2, seed), &archive);
        idx.fold_times(folds).unwrap();
        let bytes = idx.to_bytes().unwrap();
        let path = std::env::temp_dir().join(format!(
            "rambo-prop-paged-{}-{}.cat",
            std::process::id(),
            CASE.fetch_add(1, Ordering::Relaxed),
        ));
        std::fs::write(&path, &bytes).unwrap();

        let file = rambo_bitvec::PagedFile::open(&path, 1 << 20).unwrap();
        let counters = Arc::new(rambo_bitvec::BlockCacheCounters::new());
        let (paged, used) = Rambo::open_paged_at(&file, 0, &counters).unwrap();
        std::fs::remove_file(&path).unwrap();
        prop_assert_eq!(used, bytes.len() as u64);
        prop_assert_eq!(&paged, &idx, "paged index must equal the source");

        let mut all_probes = probes;
        all_probes.extend(archive.docs.iter().flat_map(|(_, ts)| ts.iter().take(2).copied()));
        let mut ctx_m = QueryContext::new();
        let mut ctx_p = QueryContext::new();
        for &t in &all_probes {
            for mode in [QueryMode::Full, QueryMode::Sparse] {
                prop_assert_eq!(
                    idx.query_terms_with(&[t], mode, &mut ctx_m),
                    paged.query_terms_with(&[t], mode, &mut ctx_p),
                    "mode {:?} term {:#x}", mode, t
                );
            }
        }
        let q: Vec<u64> = all_probes.iter().take(4).copied().collect();
        prop_assert_eq!(
            idx.query_terms_with(&q, QueryMode::Full, &mut ctx_m),
            paged.query_terms_with(&q, QueryMode::Full, &mut ctx_p)
        );
    }

    /// Multi-term queries (Algorithm 2 semantics) always contain every
    /// document holding *all* the queried terms.
    #[test]
    fn multi_term_no_false_negatives(
        archive in archive_strategy(12),
        seed in any::<u64>(),
    ) {
        let idx = build(RamboParams::flat(8, 3, 1 << 12, 2, seed), &archive);
        for (d, (_, terms)) in archive.docs.iter().enumerate() {
            let q: Vec<u64> = terms.iter().take(4).copied().collect();
            let joint = idx.query_terms_u64(&q, QueryMode::Full);
            prop_assert!(joint.contains(&(d as u32)));
            let seq = idx.query_sequence_u64(&q, QueryMode::Full);
            prop_assert!(seq.contains(&(d as u32)));
            // Algorithm-2 semantics at least as selective as term-at-a-time.
            prop_assert!(joint.iter().all(|x| seq.contains(x)));
        }
    }
}
